"""Unit tests for the metrics registry primitives."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    METRICS_WIRE_VERSION,
    Histogram,
    MetricsRegistry,
    resolve_metrics,
)
from repro.obs.registry import DEFAULT_TIME_BOUNDS, DEFAULT_VALUE_BOUNDS


class TestHistogram:
    def test_observe_tracks_exact_sidecars(self):
        hist = Histogram((1.0, 10.0))
        for v in (0.5, 2.0, 5.0, 100.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.total == pytest.approx(107.5)
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(107.5 / 4)
        # Buckets: <=1, <=10, overflow.
        assert hist.counts == [1, 2, 1]

    def test_quantile_is_bucket_edge_clamped_to_max(self):
        hist = Histogram((1.0, 10.0, 100.0))
        hist.observe(3.0)
        # One observation in the (1, 10] bucket: every quantile is the
        # bucket's upper edge clamped to the observed max.
        assert hist.quantile(0.5) == 3.0
        assert hist.quantile(1.0) == 3.0
        hist.observe(50.0)
        assert hist.quantile(0.95) == 50.0

    def test_quantile_of_empty_is_none(self):
        assert Histogram().quantile(0.5) is None

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Histogram().quantile(1.5)

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(ConfigurationError):
            Histogram((1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram((2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram(())

    def test_merge_is_elementwise_addition(self):
        a, b = Histogram((1.0, 10.0)), Histogram((1.0, 10.0))
        a.observe(0.5)
        a.observe(5.0)
        b.observe(20.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.min == 0.5
        assert a.max == 20.0

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ConfigurationError):
            Histogram((1.0,)).merge(Histogram((2.0,)))

    def test_merge_into_empty(self):
        a, b = Histogram((1.0,)), Histogram((1.0,))
        b.observe(0.25)
        a.merge(b)
        assert (a.count, a.min, a.max) == (1, 0.25, 0.25)

    def test_wire_round_trip(self):
        hist = Histogram(DEFAULT_VALUE_BOUNDS)
        for v in (0.0, 3.0, 1e7):
            hist.observe(v)
        clone = Histogram.from_wire(hist.to_wire())
        assert clone.to_wire() == hist.to_wire()
        assert clone.counts is not hist.counts

    def test_wire_rejects_bucket_mismatch(self):
        wire = Histogram((1.0, 2.0)).to_wire()
        wire[1] = [0, 0]  # 2 buckets for 2 bounds: needs 3
        with pytest.raises(ValueError):
            Histogram.from_wire(wire)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.count("a", 4)
        assert reg.counter_value("a") == 5
        assert reg.counter_value("missing") == 0

    def test_counters_reject_negative_increments(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().count("a", -1)

    def test_gauges_are_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.0)
        reg.gauge("g", 7.0)
        assert reg.gauges["g"] == 7.0

    def test_span_context_manager_records_duration(self):
        reg = MetricsRegistry()
        with reg.span("block"):
            pass
        assert reg.spans["block"].count == 1
        assert reg.spans["block"].total >= 0.0
        assert reg.spans["block"].bounds == tuple(DEFAULT_TIME_BOUNDS)

    def test_observe_span_is_equivalent_to_span(self):
        reg = MetricsRegistry()
        reg.observe_span("block", 0.5)
        reg.observe_span("block", 1.5)
        assert reg.spans["block"].count == 2
        assert reg.spans["block"].total == pytest.approx(2.0)

    def test_top_spans_ranked_by_total_time(self):
        reg = MetricsRegistry()
        reg.observe_span("cheap", 0.001)
        reg.observe_span("hot", 2.0)
        reg.observe_span("mid", 0.5)
        names = [name for name, _ in reg.top_spans(2)]
        assert names == ["hot", "mid"]

    def test_len_and_iter_cover_all_namespaces(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.gauge("g", 1.0)
        reg.observe("h", 5.0)
        reg.observe_span("s", 0.1)
        assert len(reg) == 4
        assert sorted(reg) == ["c", "g", "h", "s"]

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("shared", 2)
        b.count("shared", 3)
        b.count("only_b")
        a.observe_span("s", 0.1)
        b.observe_span("s", 0.2)
        b.observe("h", 9.0)
        a.merge(b)
        assert a.counter_value("shared") == 5
        assert a.counter_value("only_b") == 1
        assert a.spans["s"].count == 2
        assert a.histograms["h"].count == 1

    def test_merge_does_not_alias_source_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.observe_span("s", 0.1)
        a.merge(b)
        b.observe_span("s", 0.2)
        assert a.spans["s"].count == 1
        assert b.spans["s"].count == 2

    def test_wire_round_trip_and_key_sorting(self):
        reg = MetricsRegistry()
        reg.count("z")
        reg.count("a", 10)
        reg.gauge("g", 2.5)
        reg.observe("values", 123.0)
        reg.observe_span("timed", 0.25)
        wire = reg.to_wire()
        assert wire[0] == METRICS_WIRE_VERSION
        assert [k for k, _ in wire[1]] == ["a", "z"]
        clone = MetricsRegistry.from_wire(wire)
        assert clone.to_wire() == wire

    def test_from_wire_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_wire([999, [], [], [], []])
        with pytest.raises(ValueError):
            MetricsRegistry.from_wire([])

    def test_snapshot_is_json_safe(self):
        import json

        reg = MetricsRegistry()
        reg.count("c", 3)
        reg.observe_span("s", 0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"] == {"c": 3}
        assert snap["spans"]["s"]["count"] == 1


class TestResolveMetrics:
    def test_registry_passes_through(self):
        reg = MetricsRegistry()
        assert resolve_metrics(reg) is reg

    @pytest.mark.parametrize("spec", [True, "on", "1", "yes"])
    def test_truthy_specs_build_fresh_registry(self, spec):
        reg = resolve_metrics(spec)
        assert isinstance(reg, MetricsRegistry)
        assert len(reg) == 0

    @pytest.mark.parametrize("spec", [False, "off", "0", "", "none", "no"])
    def test_falsey_specs_disable(self, spec):
        assert resolve_metrics(spec) is None

    def test_none_defers_to_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert resolve_metrics(None) is None
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert isinstance(resolve_metrics(None), MetricsRegistry)
        monkeypatch.setenv("REPRO_METRICS", "off")
        assert resolve_metrics(None) is None

    def test_rejects_unknown_types(self):
        with pytest.raises(ConfigurationError):
            resolve_metrics(3.14)
