"""The observability overhead contract: metrics-on must stay cheap.

Runs the same best-of-R measurement as ``benchmarks/bench_obs.py``
(imported from the file, so the gate and the CI smoke check cannot
drift apart) and asserts the metrics-on engine overhead stays under
5% on one representative attacked trial. Best-of timing damps
scheduler noise; the engine's inlined span timing and the network's
int accumulators exist precisely to keep this margin wide.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

_BENCH_OBS = (
    pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "bench_obs.py"
)


@pytest.fixture(scope="module")
def bench_obs():
    spec = importlib.util.spec_from_file_location("bench_obs", _BENCH_OBS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_metrics_overhead_under_five_percent(bench_obs):
    rounds = bench_obs._measure_rounds(seeds=2, repeats=5)
    overhead = bench_obs.paired_overhead_pct(rounds)
    assert overhead < 5.0, (
        f"metrics-on engine overhead {overhead:.1f}% breaches the 5% "
        f"contract (paired rounds: {rounds}); see benchmarks/bench_obs.py"
    )


def test_paired_overhead_takes_the_quietest_round(bench_obs):
    # One clean round (2% here) outvotes rounds a scheduler spike hit.
    rounds = [(1.0, 1.30), (1.0, 1.02), (1.0, 1.25)]
    assert bench_obs.paired_overhead_pct(rounds) == pytest.approx(2.0)


def test_gate_script_fails_on_regression(bench_obs, capsys, monkeypatch):
    # Deterministic trip-wire: with canned timings showing 50% overhead
    # in every round the gate must exit 1 (a true regression inflates
    # all rounds, so min-pairing cannot hide it).
    monkeypatch.setattr(
        bench_obs, "_measure_rounds", lambda seeds, repeats: [(1.0, 1.5)] * 3
    )
    assert bench_obs.main([]) == 1
    assert "FAIL" in capsys.readouterr().err


def test_gate_script_passes_within_bound(bench_obs, capsys, monkeypatch):
    monkeypatch.setattr(
        bench_obs, "_measure_rounds", lambda seeds, repeats: [(1.0, 1.02)] * 3
    )
    assert bench_obs.main([]) == 0
    assert "+2.0%" in capsys.readouterr().out
