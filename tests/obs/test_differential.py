"""Differential battery: metrics must never perturb outcomes.

The observability layer's core contract is that it is write-only:
turning metrics on changes *nothing* about what a trial computes. The
battery pins that at the strongest available granularity — the
outcome's wire encoding, byte for byte — across protocol/adversary
pairs, with and without the sanitizer, and across every campaign
execution mode (inline, chunked-parallel, cache-resumed).
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import Campaign
from repro.experiments.config import SweepSpec, TrialSpec
from repro.experiments.runner import run_trial
from repro.obs import MetricsRegistry

#: Three structurally different pairs: the paper's baseline protocol
#: under the universal adversary, an omission-driven strategy against
#: EARS, and flood under targeted crashes.
PAIRS = [
    ("push-pull", "ugf"),
    ("ears", "str-2.1.1"),
    ("flood", "greedy-oracle"),
]


def _wire_bytes(outcome) -> bytes:
    return json.dumps(outcome.to_wire(), separators=(",", ":")).encode()


@pytest.mark.parametrize("protocol,adversary", PAIRS)
def test_outcome_bytes_identical_metrics_off_vs_on(protocol, adversary):
    spec = TrialSpec(protocol=protocol, adversary=adversary, n=24, f=7, seed=11)
    off = run_trial(spec)
    registry = MetricsRegistry()
    on = run_trial(spec, metrics=registry)
    assert _wire_bytes(on) == _wire_bytes(off)
    # The registry actually observed the run — this was not a no-op.
    assert registry.counter_value("engine.trials") == 1
    assert registry.counter_value("engine.messages_sent") > 0


@pytest.mark.parametrize("protocol,adversary", PAIRS)
def test_outcome_bytes_identical_under_sanitizer(protocol, adversary):
    spec = TrialSpec(
        protocol=protocol,
        adversary=adversary,
        n=24,
        f=7,
        seed=11,
        sanitize="warn:counters",
    )
    off = run_trial(spec)
    on = run_trial(spec, metrics=MetricsRegistry())
    assert _wire_bytes(on) == _wire_bytes(off)


def _sweep_specs():
    return list(
        SweepSpec(
            protocol="push-pull",
            adversary="ugf",
            n_values=(12, 20),
            seeds=(0, 1, 2),
        ).trials()
    )


def _run_campaign(tmp_path, name, **kwargs) -> list[bytes]:
    with Campaign(cache_dir=tmp_path / name, **kwargs) as campaign:
        results = campaign.run_trials(_sweep_specs())
    assert all(r.ok for r in results)
    return [_wire_bytes(r.outcome) for r in results]


def test_campaign_modes_all_byte_identical(tmp_path):
    """Inline, chunked-parallel, and cache-resumed execution agree with
    the metrics-off inline baseline, byte for byte."""
    baseline = _run_campaign(tmp_path, "baseline", workers=0)
    inline_on = _run_campaign(tmp_path, "inline", workers=0, metrics=True)
    assert inline_on == baseline
    parallel_on = _run_campaign(tmp_path, "parallel", workers=2, metrics=True)
    assert parallel_on == baseline
    # Resume against the cache the parallel run filled: every trial is
    # a store hit, decoded back through the wire format.
    with Campaign(cache_dir=tmp_path / "parallel", workers=2, metrics=True) as campaign:
        resumed = campaign.run_trials(_sweep_specs())
        assert campaign.stats.cached == len(resumed)
    assert [_wire_bytes(r.outcome) for r in resumed] == baseline


def test_parallel_campaign_merges_worker_registries(tmp_path):
    # A scalar-only cell (no vectorized hedged-push-pull kernel): the
    # point is that chunks run in *worker processes*, so the sweep must
    # not route to the in-process batch backend.
    specs = list(
        SweepSpec(
            protocol="hedged-push-pull",
            adversary="ugf",
            n_values=(12, 20),
            seeds=(0, 1, 2),
        ).trials()
    )
    with Campaign(cache_dir=tmp_path, workers=2, metrics=True) as campaign:
        results = campaign.run_trials(specs)
        registry = campaign.metrics
    assert all(r.ok for r in results)
    # Chunks ran in worker processes; their registries merged here.
    assert registry.counter_value("engine.trials") == len(specs)
    assert registry.spans["campaign.trial"].count == len(specs)


def test_env_var_metrics_is_differentially_invisible(monkeypatch):
    spec = TrialSpec(protocol="push-pull", adversary="ugf", n=20, f=6, seed=5)
    monkeypatch.delenv("REPRO_METRICS", raising=False)
    off = run_trial(spec)
    monkeypatch.setenv("REPRO_METRICS", "1")
    on = run_trial(spec)
    assert _wire_bytes(on) == _wire_bytes(off)
