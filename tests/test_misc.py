"""Small cross-cutting tests: error hierarchy, payload sizing, controls."""

import pytest

from repro.core.adversary import AdversaryControls
from repro.core.budget import CrashBudget
from repro.errors import (
    ConfigurationError,
    CrashBudgetExceeded,
    IncompleteRunError,
    ProtocolViolation,
    ReproError,
    SimulationError,
)
from repro.protocols.knowledge import GossipKnowledge, RelationalKnowledge
from repro.sim.messages import payload_size


def test_error_hierarchy():
    # Every library error is a ReproError; configuration errors are
    # also ValueErrors and runtime errors also RuntimeErrors, so
    # generic handlers behave as users expect.
    assert issubclass(ConfigurationError, ReproError)
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(SimulationError, ReproError)
    assert issubclass(SimulationError, RuntimeError)
    assert issubclass(CrashBudgetExceeded, SimulationError)
    assert issubclass(ProtocolViolation, SimulationError)
    assert issubclass(IncompleteRunError, ReproError)


def test_payload_size_defaults_to_one():
    assert payload_size(object()) == 1
    assert payload_size(None) == 1
    assert payload_size("x") == 1


def test_payload_size_uses_nbytes():
    kn = GossipKnowledge(64, owner=0)
    assert payload_size(kn.snapshot()) == 8  # 64 bits packed
    rk = RelationalKnowledge(16, owner=0)
    assert payload_size(rk.snapshot()) == 2 + 16 * 2  # G + I rows


def test_controls_without_omission_capability():
    controls = AdversaryControls(
        crash=lambda rho: None,
        set_local_step_time=lambda rho, v: None,
        set_delivery_time=lambda rho, v: None,
        budget=CrashBudget(1),
    )
    with pytest.raises(NotImplementedError):
        controls.set_omission(0)


def test_controls_delegate_to_callables():
    calls = []
    controls = AdversaryControls(
        crash=lambda rho: calls.append(("crash", rho)),
        set_local_step_time=lambda rho, v: calls.append(("delta", rho, v)),
        set_delivery_time=lambda rho, v: calls.append(("d", rho, v)),
        budget=CrashBudget(1),
        set_omission=lambda rho, on: calls.append(("omit", rho, on)),
    )
    controls.crash(3)
    controls.set_local_step_time(1, 5)
    controls.set_delivery_time(2, 9)
    controls.set_omission(4, True)
    assert calls == [("crash", 3), ("delta", 1, 5), ("d", 2, 9), ("omit", 4, True)]


def test_public_api_importable():
    # The README's import surface must exist.
    from repro import (  # noqa: F401
        Ears,
        NullAdversary,
        PushPull,
        Sears,
        UniversalGossipFighter,
        simulate,
    )
    import repro

    assert repro.__version__
