"""Tests for the one-command full-reproduction report."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.full_report import (
    SCALES,
    ReproductionScale,
    render_markdown,
    run_full_reproduction,
)

TINY = ReproductionScale(
    label="tiny-test",
    n_values=(8, 12, 16),
    seeds=(0, 1),
    ablation_n=14,
    ablation_seeds=(0, 1),
    decomposition_seeds=(0, 1, 2, 3),
    tradeoff={
        "n": 10,
        "f": 3,
        "tau": 2,
        "k_values": (1,),
        "seeds": (0, 1),
    },
)


@pytest.fixture(scope="module")
def report():
    return run_full_reproduction(TINY, workers=1)


def test_scales_registered():
    assert set(SCALES) == {"smoke", "laptop", "paper"}
    assert len(SCALES["paper"].n_values) == 10
    assert len(SCALES["paper"].seeds) == 50


def test_unknown_scale_rejected():
    with pytest.raises(ConfigurationError):
        run_full_reproduction("galactic")


def test_report_covers_everything(report):
    assert set(report.panels) == {"3a", "3b", "3c", "3d", "3e"}
    assert set(report.verdicts) == set(report.panels)
    assert set(report.f_sweep) == {"push-pull", "ears"}
    assert set(report.adversary_comparison) == {"push-pull", "ears"}
    assert set(report.decomposition) == {"push-pull", "ears", "sears"}
    assert len(report.tradeoff) == 1


def test_markdown_rendering(report):
    text = render_markdown(report)
    assert text.startswith("# Reproduction report")
    for heading in (
        "## Figure 3",
        "### Figure 3a",
        "### Figure 3e",
        "## F-fraction sweep",
        "## Adversary comparison",
        "## UGF mixture decomposition",
        "## Theorem 1 trade-off",
    ):
        assert heading in text, heading
    # Every adversary row made it into the comparison tables.
    for adversary in ("oblivious", "greedy-oracle", "ugf"):
        assert adversary in text


def test_progress_callback_called():
    messages = []
    run_full_reproduction(TINY, workers=1, progress=messages.append)
    assert any("Figure 3a" in m for m in messages)
    assert any("trade-off" in m for m in messages)
