"""Round-trip tests for result serialisation."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SweepSpec
from repro.experiments.figure3 import run_figure3_panel
from repro.experiments.runner import run_sweep
from repro.experiments.serialization import (
    dumps,
    loads,
    panel_from_dict,
    sweep_from_dict,
)


def small_sweep():
    return run_sweep(
        SweepSpec(
            protocol="flood",
            adversary="str-1",
            n_values=(6, 10),
            seeds=(0, 1),
            environment=None,
        ),
        workers=1,
    )


def test_sweep_round_trip():
    result = small_sweep()
    text = dumps(result)
    back = loads(text)
    assert back.spec == result.spec
    assert back.points == result.points


def test_panel_round_trip():
    result = run_figure3_panel("3a", n_values=(8,), seeds=(0, 1), workers=1)
    back = loads(dumps(result))
    assert back.spec == result.spec
    for curve in result.curves:
        assert back.curves[curve].points == result.curves[curve].points


def test_environment_preserved():
    result = run_sweep(
        SweepSpec(
            protocol="flood",
            adversary="none",
            n_values=(6,),
            seeds=(0,),
            environment="jitter:2,2",
        ),
        workers=1,
    )
    back = loads(dumps(result))
    assert back.spec.environment == "jitter:2,2"


def test_json_is_plain_data():
    data = json.loads(dumps(small_sweep()))
    assert data["kind"] == "sweep"
    assert data["version"] == 1
    assert isinstance(data["points"][0]["messages"]["median"], float)


def test_bad_records_rejected():
    with pytest.raises(ConfigurationError):
        loads('{"kind": "mystery"}')
    with pytest.raises(ConfigurationError):
        sweep_from_dict({"kind": "panel"})
    with pytest.raises(ConfigurationError):
        panel_from_dict({"kind": "panel", "panel": "9z", "curves": {}})
    with pytest.raises(ConfigurationError):
        dumps(42)  # type: ignore[arg-type]
