"""Round-trip tests for result serialisation."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SweepSpec, TrialSpec
from repro.experiments.figure3 import run_figure3_panel
from repro.experiments.runner import run_sweep, run_trial
from repro.experiments.serialization import (
    dumps,
    loads,
    outcome_from_dict,
    outcome_to_dict,
    panel_from_dict,
    sweep_from_dict,
)


def small_sweep():
    return run_sweep(
        SweepSpec(
            protocol="flood",
            adversary="str-1",
            n_values=(6, 10),
            seeds=(0, 1),
            environment=None,
        ),
        workers=1,
    )


def test_sweep_round_trip():
    result = small_sweep()
    text = dumps(result)
    back = loads(text)
    assert back.spec == result.spec
    assert back.points == result.points


def test_panel_round_trip():
    result = run_figure3_panel("3a", n_values=(8,), seeds=(0, 1), workers=1)
    back = loads(dumps(result))
    assert back.spec == result.spec
    for curve in result.curves:
        assert back.curves[curve].points == result.curves[curve].points


def test_environment_preserved():
    result = run_sweep(
        SweepSpec(
            protocol="flood",
            adversary="none",
            n_values=(6,),
            seeds=(0,),
            environment="jitter:2,2",
        ),
        workers=1,
    )
    back = loads(dumps(result))
    assert back.spec.environment == "jitter:2,2"


def test_json_is_plain_data():
    data = json.loads(dumps(small_sweep()))
    assert data["kind"] == "sweep"
    assert data["version"] == 1
    assert isinstance(data["points"][0]["messages"]["median"], float)


def assert_outcomes_identical(a, b):
    """Field-by-field bit-identity, numpy arrays included."""
    for name in (
        "n", "f", "seed", "protocol_name", "adversary_name", "completed",
        "rumor_gathering_ok", "t_end", "max_local_step_time",
        "max_delivery_time", "crashed", "crash_steps", "steps_simulated",
        "strategy_label",
    ):
        assert getattr(a, name) == getattr(b, name), name
    for name in ("sent", "received", "bytes_sent", "sleep_counts", "wake_counts"):
        left, right = getattr(a, name), getattr(b, name)
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right), name


def test_outcome_round_trip_bit_identical():
    outcome = run_trial(
        TrialSpec(protocol="push-pull", adversary="ugf", n=14, f=4, seed=3)
    )
    back = outcome_from_dict(json.loads(json.dumps(outcome_to_dict(outcome))))
    assert_outcomes_identical(outcome, back)
    assert back.message_complexity(allow_truncated=True) == outcome.message_complexity(
        allow_truncated=True
    )
    assert back.time_complexity(allow_truncated=True) == outcome.time_complexity(
        allow_truncated=True
    )


def test_outcome_round_trip_preserves_crash_records():
    outcome = run_trial(
        TrialSpec(protocol="ears", adversary="str-1", n=12, f=6, seed=0)
    )
    assert outcome.crashed  # Strategy 1 crashes its group
    back = loads(dumps(outcome))
    assert_outcomes_identical(outcome, back)
    assert back.crash_steps == outcome.crash_steps


def test_outcome_round_trip_preserves_strategy_label():
    outcome = run_trial(
        TrialSpec(protocol="flood", adversary="ugf", n=10, f=3, seed=1)
    )
    assert outcome.strategy_label in ("str-1", "str-2.1.0", "str-2.1.1")
    back = loads(dumps(outcome))
    assert back.strategy_label == outcome.strategy_label


def test_outcome_record_kind_tagged():
    outcome = run_trial(
        TrialSpec(protocol="flood", adversary="none", n=6, f=0, seed=0)
    )
    data = json.loads(dumps(outcome))
    assert data["kind"] == "outcome"
    with pytest.raises(ConfigurationError):
        outcome_from_dict({"kind": "sweep"})


def test_bad_records_rejected():
    with pytest.raises(ConfigurationError):
        loads('{"kind": "mystery"}')
    with pytest.raises(ConfigurationError):
        sweep_from_dict({"kind": "panel"})
    with pytest.raises(ConfigurationError):
        panel_from_dict({"kind": "panel", "panel": "9z", "curves": {}})
    with pytest.raises(ConfigurationError):
        dumps(42)  # type: ignore[arg-type]
