"""Tests for trial/sweep execution."""

import pytest

from repro.errors import CampaignError
from repro.experiments.config import SweepSpec, TrialSpec
from repro.experiments.runner import aggregate_sweep, run_sweep, run_trial


def test_run_trial_builds_from_names():
    outcome = run_trial(
        TrialSpec(protocol="round-robin", adversary="none", n=10, f=0, seed=0)
    )
    assert outcome.protocol_name == "round-robin"
    assert outcome.adversary_name == "none"
    assert outcome.message_complexity() == 90


def test_run_trial_forwards_kwargs():
    outcome = run_trial(
        TrialSpec(
            protocol="sears",
            adversary="str-2.1.1",
            n=12,
            f=4,
            seed=1,
            protocol_kwargs=(("eps", 0.0),),
            adversary_kwargs=(("tau", 3),),
        )
    )
    assert outcome.completed
    assert outcome.max_delivery_time == 9


def test_run_sweep_inline_aggregates_per_n():
    sweep = SweepSpec(
        protocol="round-robin",
        adversary="none",
        n_values=(6, 10),
        seeds=(0, 1, 2),
    )
    result = run_sweep(sweep, workers=1)
    assert [p.n for p in result.points] == [6, 10]
    # Round-robin is deterministic: quartiles collapse onto the median.
    p6 = result.points[0]
    assert p6.messages.median == 30.0
    assert p6.messages.q1 == p6.messages.q3 == 30.0
    assert p6.truncated_runs == 0
    assert p6.gather_failures == 0


def test_run_sweep_parallel_matches_inline():
    sweep = SweepSpec(
        protocol="push-pull",
        adversary="ugf",
        n_values=(10, 16),
        seeds=(0, 1, 2, 3),
    )
    inline = run_sweep(sweep, workers=1)
    parallel = run_sweep(sweep, workers=2)
    for a, b in zip(inline.points, parallel.points):
        assert a.n == b.n
        assert a.messages.median == b.messages.median
        assert a.time.median == b.time.median


def test_series_accessor():
    sweep = SweepSpec(
        protocol="flood", adversary="none", n_values=(5, 8), seeds=(0,)
    )
    result = run_sweep(sweep, workers=1)
    ns, msgs = result.series("messages")
    assert ns == [5, 8]
    assert msgs == [20.0, 56.0]
    _, times = result.series("time")
    assert all(t <= 1.5 for t in times)
    with pytest.raises(ValueError):
        result.series("latency")


def test_quartiles_accessor():
    sweep = SweepSpec(
        protocol="push-pull", adversary="ugf", n_values=(10, 16), seeds=(0, 1, 2)
    )
    result = run_sweep(sweep, workers=1)
    ns, q1s, q3s = result.quartiles("messages")
    assert ns == [10, 16]
    assert q1s == [p.messages.q1 for p in result.points]
    assert q3s == [p.messages.q3 for p in result.points]
    assert all(a <= b for a, b in zip(q1s, q3s))
    _, tq1s, tq3s = result.quartiles("time")
    assert tq1s == [p.time.q1 for p in result.points]
    assert tq3s == [p.time.q3 for p in result.points]
    with pytest.raises(ValueError):
        result.quartiles("latency")


class _VaryingFSpec:
    """Duck-typed sweep spec whose grid repeats an N with different F."""

    protocol = "flood"
    adversary = "none"
    max_steps = 5_000_000

    def trials(self):
        for f in (0, 2):
            for seed in (0, 1):
                yield TrialSpec(
                    protocol="flood", adversary="none", n=8, f=f, seed=seed
                )


def test_aggregate_keys_cells_by_n_and_f():
    # Same N with two different F values must stay two points, not
    # silently merge into one (the old by-N grouping bug).
    spec = _VaryingFSpec()
    outcomes = [run_trial(t) for t in spec.trials()]
    result = aggregate_sweep(spec, outcomes)
    assert [(p.n, p.f) for p in result.points] == [(8, 0), (8, 2)]
    assert all(p.messages.n_runs == 2 for p in result.points)


def test_aggregate_rejects_outcomes_foreign_to_the_grid():
    sweep = SweepSpec(
        protocol="flood", adversary="none", n_values=(6,), seeds=(0,)
    )
    stray = run_trial(
        TrialSpec(protocol="flood", adversary="none", n=9, f=2, seed=0)
    )
    with pytest.raises(CampaignError, match="does not match"):
        aggregate_sweep(sweep, [stray])


def test_aggregate_rejects_mismatched_protocol():
    sweep = SweepSpec(
        protocol="push-pull", adversary="none", n_values=(6,), seeds=(0,)
    )
    wrong = run_trial(
        TrialSpec(protocol="flood", adversary="none", n=6, f=2, seed=0)
    )
    with pytest.raises(CampaignError, match="spec wants"):
        aggregate_sweep(sweep, [wrong])


def test_all_truncated_without_allow_raises():
    from repro.errors import IncompleteRunError

    sweep = SweepSpec(
        protocol="ears",
        adversary="none",
        n_values=(20,),
        seeds=(0, 1),
        max_steps=3,
    )
    with pytest.raises(IncompleteRunError, match="max_steps"):
        run_sweep(sweep, workers=1, allow_truncated=False)


def test_truncated_runs_counted():
    # An omission attack on round-robin delays messages past any
    # horizon the run can reach, so receivers never hear from C...
    # round-robin still completes (senders don't wait), so use a tiny
    # max_steps to force truncation instead.
    sweep = SweepSpec(
        protocol="ears",
        adversary="none",
        n_values=(20,),
        seeds=(0, 1),
        max_steps=3,
    )
    result = run_sweep(sweep, workers=1)
    assert result.points[0].truncated_runs == 2
