"""Tests for experiment specs."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import SweepSpec, TrialSpec, f_fraction


def test_f_fraction_rounding():
    assert f_fraction(100, 0.3) == 30
    assert f_fraction(10, 0.1) == 1
    assert f_fraction(10, 0.25) == 2  # banker's rounding of 2.5
    assert f_fraction(50, 0.0) == 0


def test_f_fraction_clamped_below_n():
    assert f_fraction(2, 0.9) == 1


def test_f_fraction_validation():
    with pytest.raises(ConfigurationError):
        f_fraction(10, 1.0)
    with pytest.raises(ConfigurationError):
        f_fraction(10, -0.1)


def test_trial_spec_with_seed():
    spec = TrialSpec(protocol="ears", adversary="ugf", n=10, f=3, seed=0)
    other = spec.with_seed(9)
    assert other.seed == 9
    assert other.protocol == "ears"
    assert spec.seed == 0


def test_sweep_enumerates_grid():
    sweep = SweepSpec(
        protocol="ears",
        adversary="none",
        n_values=(10, 20),
        f_of_n=0.3,
        seeds=(0, 1, 2),
    )
    trials = list(sweep.trials())
    assert len(trials) == 6 == sweep.n_trials
    assert {(t.n, t.seed) for t in trials} == {
        (n, s) for n in (10, 20) for s in (0, 1, 2)
    }
    assert all(t.f == f_fraction(t.n, 0.3) for t in trials)


def test_specs_are_picklable():
    sweep = SweepSpec(
        protocol="sears",
        adversary="str-2.1.1",
        n_values=(10,),
        protocol_kwargs=(("c", 2.0),),
    )
    for trial in sweep.trials():
        assert pickle.loads(pickle.dumps(trial)) == trial
    assert pickle.loads(pickle.dumps(sweep)) == sweep
