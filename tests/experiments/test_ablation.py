"""Tests for the ablation harness (tiny settings)."""

from repro.experiments.ablation import (
    run_adversary_comparison,
    run_f_sweep,
    run_q_grid,
)


def test_f_sweep_cells():
    cells = run_f_sweep(
        "round-robin", n=12, fractions=(0.1, 0.3), seeds=(0, 1)
    )
    assert [c.label for c in cells] == ["F=0.1N", "F=0.3N"]
    assert cells[0].f == 1
    assert cells[1].f == 4
    assert all(c.messages.n_runs == 2 for c in cells)


def test_f_sweep_stronger_adversary_with_larger_f():
    # §V-A.1: "the higher F, the stronger the adversary" — checked on
    # EARS time (the clearest monotone signal).
    cells = run_f_sweep(
        "ears",
        n=24,
        fractions=(0.1, 0.5),
        seeds=(0, 1, 2),
        adversary="str-2.1.0",
    )
    assert cells[-1].time.median > cells[0].time.median


def test_q_grid_shapes():
    cells = run_q_grid(
        "flood", n=10, f=3, q1_values=(0.3, 0.6), q2_values=(0.5,), seeds=(0,)
    )
    assert len(cells) == 2
    assert cells[0].label == "q1=0.30,q2=0.50"


def test_adversary_comparison_rows():
    cells = run_adversary_comparison(
        "push-pull", n=14, f=4, seeds=(0, 1), adversaries=("none", "ugf")
    )
    assert [c.label for c in cells] == ["none", "ugf"]
