"""Tests for the Theorem 1 trade-off experiment."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.tradeoff import run_tradeoff


def test_tradeoff_points_structure():
    points = run_tradeoff(
        "round-robin", n=12, f=4, tau=2, k_values=(1, 2), seeds=(0, 1)
    )
    assert [p.k for p in points] == [1, 2]
    for p in points:
        assert p.alpha >= 1
        assert p.bounds.message_bound >= 12  # at least N
        assert p.messages_under_delay.n_runs == 2


def test_tradeoff_wall_grows_with_k():
    # The raw T_end under isolation grows with the exponent.
    points = run_tradeoff(
        "ears", n=16, f=6, tau=2, k_values=(1, 3), seeds=(0, 1)
    )
    assert (
        points[1].steps_under_isolation.median
        > points[0].steps_under_isolation.median
    )


def test_tradeoff_validation():
    with pytest.raises(ConfigurationError):
        run_tradeoff("ears", n=10, f=3, tau=1)
