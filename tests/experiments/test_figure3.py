"""Tests for the Figure 3 panel harness (tiny grids)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.figure3 import (
    CURVES,
    PANELS,
    figure3_sweeps,
    run_figure3_panel,
)


def test_all_five_panels_defined():
    assert set(PANELS) == {"3a", "3b", "3c", "3d", "3e"}
    assert PANELS["3a"].max_strategy == "str-1"
    assert PANELS["3b"].max_strategy == "str-2.1.0"
    for panel in ("3c", "3d", "3e"):
        assert PANELS[panel].max_strategy == "str-2.1.1"


def test_quantities_match_paper():
    assert PANELS["3a"].quantity == "time"
    assert PANELS["3b"].quantity == "time"
    assert PANELS["3c"].quantity == "messages"
    assert PANELS["3e"].protocol == "sears"


def test_sweeps_have_three_curves():
    sweeps = figure3_sweeps("3a", n_values=(10, 20), seeds=(0, 1))
    assert set(sweeps) == set(CURVES)
    assert sweeps["no-adversary"].adversary == "none"
    assert sweeps["ugf"].adversary == "ugf"
    assert sweeps["max-ugf"].adversary == "str-1"
    assert sweeps["ugf"].n_values == (10, 20)


def test_unknown_panel_rejected():
    with pytest.raises(ConfigurationError):
        figure3_sweeps("3z")


def test_run_panel_tiny_grid():
    result = run_figure3_panel(
        "3a", n_values=(10, 14), seeds=(0, 1), workers=1
    )
    assert set(result.curves) == set(CURVES)
    ns, medians = result.series("no-adversary")
    assert ns == [10, 14]
    assert all(m > 0 for m in medians)


def test_panel_attack_exceeds_baseline_messages():
    result = run_figure3_panel("3d", n_values=(20, 30), seeds=(0, 1, 2), workers=1)
    _, base = result.series("no-adversary")
    _, attacked = result.series("max-ugf")
    assert all(a > b for a, b in zip(attacked, base))
