"""Tests for table/CSV rendering."""

import csv
import io

from repro.experiments.figure3 import run_figure3_panel
from repro.experiments.report import (
    format_table,
    panel_csv,
    panel_table,
    shape_summary,
    sweep_csv,
)
from repro.experiments.runner import run_sweep
from repro.experiments.config import SweepSpec


def small_panel():
    return run_figure3_panel("3a", n_values=(8, 12), seeds=(0, 1), workers=1)


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all rows equally wide


def test_panel_table_contains_ns_and_curves():
    table = panel_table(small_panel())
    assert "Figure 3a" in table
    assert "no-adversary" in table and "max-ugf" in table
    assert " 8 " in table or "8  " in table


def test_shape_summary_mentions_expectations():
    summary = shape_summary(small_panel())
    assert "paper expects" in summary
    assert "log" in summary


def test_sweep_csv_parses_back():
    result = run_sweep(
        SweepSpec(protocol="flood", adversary="none", n_values=(5,), seeds=(0, 1)),
        workers=1,
    )
    text = sweep_csv(result)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 1
    assert rows[0]["protocol"] == "flood"
    assert float(rows[0]["messages_median"]) == 20.0


def test_panel_csv_one_per_curve():
    csvs = panel_csv(small_panel())
    assert set(csvs) == {"no-adversary", "ugf", "max-ugf"}
    for text in csvs.values():
        assert text.startswith("protocol,")
