"""Tests for the shape-verdict machinery (synthetic panels)."""

import numpy as np
import pytest

from repro.analysis.aggregate import RunStatistics
from repro.errors import ConfigurationError
from repro.experiments.config import SweepSpec
from repro.experiments.figure3 import PANELS, PanelResult
from repro.experiments.runner import SeriesPoint, SweepResult
from repro.experiments.verdicts import check_panel

NS = (10, 20, 30, 50, 70, 100)


def stats(value: float) -> RunStatistics:
    return RunStatistics(median=value, q1=value, q3=value, n_runs=5)


def sweep(adversary: str, values) -> SweepResult:
    spec = SweepSpec(
        protocol="x", adversary=adversary, n_values=NS, seeds=(0,)
    )
    points = tuple(
        SeriesPoint(
            n=n,
            f=int(0.3 * n),
            messages=stats(v),
            time=stats(v),
            truncated_runs=0,
            gather_failures=0,
        )
        for n, v in zip(NS, values)
    )
    return SweepResult(spec=spec, points=points)


def panel(panel_id: str, base, ugf, worst) -> PanelResult:
    return PanelResult(
        spec=PANELS[panel_id],
        curves={
            "no-adversary": sweep("none", base),
            "ugf": sweep("ugf", ugf),
            "max-ugf": sweep("max", worst),
        },
    )


N = np.array(NS, dtype=float)


def test_clean_time_panel_passes():
    base = 1.5 * np.log(N) + 2
    worst = 4.0 + 0.15 * N
    verdict = check_panel(panel("3a", base, worst, worst))
    assert verdict.passed, verdict.summary()
    assert verdict.quantity == "time"
    assert not verdict.failures()


def test_flat_attack_fails_time_panel():
    base = 1.5 * np.log(N) + 2
    worst = 1.6 * np.log(N) + 2.1  # attack barely above baseline, log shape
    verdict = check_panel(panel("3a", base, worst, worst))
    assert not verdict.passed
    assert "attacked closer to linear than log" in verdict.failures()


def test_inverted_ordering_fails():
    base = 4.0 + 0.15 * N
    worst = 1.5 * np.log(N)
    verdict = check_panel(panel("3b", base, worst, worst))
    assert not verdict.passed
    assert "attack dominates baseline at max N" in verdict.failures()


def test_clean_message_panel_passes():
    base = 6.0 * N * np.log(N)
    worst = 3.0 * N**2
    verdict = check_panel(panel("3d", base, worst, worst))
    assert verdict.passed, verdict.summary()


def test_linear_attack_fails_message_panel():
    base = 6.0 * N * np.log(N)
    worst = 100.0 * N  # dominates at small N but wrong family
    verdict = check_panel(panel("3c", base, worst, worst))
    assert not verdict.passed


def test_sears_panel_requires_quadratic_baseline():
    base = 6.0 * N * np.log(N)  # not quadratic
    worst = 20.0 * N**2
    verdict = check_panel(panel("3e", base, worst, worst))
    assert not verdict.passed
    assert "baseline quadratic even unattacked" in verdict.failures()
    good = check_panel(panel("3e", 5.0 * N**2, worst, worst))
    assert good.passed


def test_summary_format():
    base = 1.5 * np.log(N) + 2
    worst = 4.0 + 0.15 * N
    text = check_panel(panel("3a", base, worst, worst)).summary()
    assert "REPRODUCED" in text
    assert "[ok]" in text


def test_needs_three_points():
    short = panel("3a", [1.0] * len(NS), [1.0] * len(NS), [1.0] * len(NS))
    tiny = PanelResult(
        spec=short.spec,
        curves={
            "no-adversary": SweepResult(
                spec=short.curves["no-adversary"].spec,
                points=short.curves["no-adversary"].points[:2],
            ),
            "ugf": short.curves["ugf"],
            "max-ugf": short.curves["max-ugf"],
        },
    )
    with pytest.raises(ConfigurationError):
        check_panel(tiny)
