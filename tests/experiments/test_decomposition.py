"""Tests for the UGF mixture decomposition."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.decomposition import (
    StrategyGroup,
    dominant_strategy,
    run_decomposition,
)


def test_groups_cover_all_seeds():
    seeds = tuple(range(12))
    groups = run_decomposition("flood", n=16, f=5, seeds=seeds)
    assert sum(g.runs for g in groups) == len(seeds)
    labels = {g.label for g in groups}
    assert labels <= {"str-1", "str-2.1.0", "str-2.1.1"}
    assert len(labels) >= 2  # 12 equiprobable draws hit >= 2 families


def test_decomposition_recovers_ears_worst_cases():
    # The paper's Figure 3b/3d finding, recovered from mixture runs.
    groups = run_decomposition("ears", n=30, f=9, seeds=tuple(range(15)))
    assert dominant_strategy(groups, "time").label == "str-2.1.0"
    assert dominant_strategy(groups, "messages").label == "str-2.1.1"


def test_dominant_strategy_validation():
    with pytest.raises(ConfigurationError):
        dominant_strategy([], "time")
    groups = run_decomposition("flood", n=10, f=3, seeds=(0, 1, 2))
    with pytest.raises(ConfigurationError):
        dominant_strategy(groups, "bandwidth")


def test_seeds_required():
    with pytest.raises(ConfigurationError):
        run_decomposition("flood", n=10, f=3, seeds=())


def test_group_is_frozen_record():
    groups = run_decomposition("flood", n=10, f=3, seeds=(0, 1))
    assert all(isinstance(g, StrategyGroup) for g in groups)
    assert all(g.messages.n_runs == g.runs for g in groups)


def test_ugf_kwargs_forwarded():
    # Pin q1 ~ 1: virtually every draw is Strategy 1.
    groups = run_decomposition(
        "flood", n=12, f=4, seeds=tuple(range(8)), q1=0.99
    )
    assert [g.label for g in groups] == ["str-1"]
