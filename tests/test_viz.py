"""Tests for the ASCII chart renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.viz.ascii_chart import AsciiChart, render_panel, render_series


def test_single_series_renders():
    chart = AsciiChart(title="demo", width=30, height=8)
    chart.add_series("lin", [1, 2, 3, 4], [1, 2, 3, 4])
    out = chart.render()
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "a = lin" in lines[-1]
    assert any("a" in line for line in lines[1:-2])


def test_monotone_series_is_monotone_on_grid():
    chart = AsciiChart(width=40, height=10)
    xs = [1, 10, 20, 30, 40]
    ys = [1.0, 10.0, 20.0, 30.0, 40.0]
    chart.add_series("m", xs, ys)
    out = chart.render()
    rows = [line.split("|", 1)[1] for line in out.splitlines() if "|" in line]
    # Column index of the glyph must increase as the row index falls
    # (higher y -> earlier row, larger x -> later column).
    positions = [
        (r, line.index("a")) for r, line in enumerate(rows) if "a" in line
    ]
    cols = [c for _, c in sorted(positions)]
    assert cols == sorted(cols, reverse=True)


def test_multiple_series_distinct_glyphs():
    out = render_series(
        "two",
        {"first": ([1, 2, 3], [1, 2, 3]), "second": ([1, 2, 3], [3, 2, 1])},
    )
    assert "a = first" in out
    assert "b = second" in out


def test_log_scale_marked():
    out = render_series("msgs", {"s": ([1, 2, 3], [10, 100, 1000])}, log_y=True)
    assert "log10 y" in out
    assert "1e+" in out


def test_flat_series_does_not_crash():
    out = render_series("flat", {"s": ([1, 2, 3], [5, 5, 5])})
    assert "a = s" in out


def test_validation():
    chart = AsciiChart()
    with pytest.raises(ConfigurationError):
        chart.add_series("bad", [1, 2], [1])
    with pytest.raises(ConfigurationError):
        chart.render()  # no series
    with pytest.raises(ConfigurationError):
        big = AsciiChart()
        for i in range(11):
            big.add_series(f"s{i}", [1, 2], [1, 2])


def test_render_panel_uses_log_for_messages():
    from repro.experiments.figure3 import run_figure3_panel

    result = run_figure3_panel("3c", n_values=(8, 12), seeds=(0,), workers=1)
    out = render_panel(result)
    assert "Figure 3c" in out
    assert "log10 y" in out
    result_t = run_figure3_panel("3a", n_values=(8, 12), seeds=(0,), workers=1)
    assert "log10 y" not in render_panel(result_t)
