"""Tests for growth-model fitting and selection."""

import numpy as np
import pytest

from repro.analysis.fitting import GROWTH_MODELS, best_growth_model, fit_growth
from repro.errors import ConfigurationError

N = np.array([10, 20, 30, 50, 70, 100, 200, 400], dtype=float)


def test_fit_recovers_coefficient_linear():
    fit = fit_growth(N, 3.5 * N, "linear")
    assert fit.coefficient == pytest.approx(3.5)
    assert fit.r_squared == pytest.approx(1.0)


def test_fit_recovers_coefficient_quadratic():
    fit = fit_growth(N, 0.25 * N**2, "quadratic")
    assert fit.coefficient == pytest.approx(0.25)
    assert fit.r_squared == pytest.approx(1.0)


def test_selection_picks_right_family_clean_data():
    for name, g in GROWTH_MODELS.items():
        y = 2.0 * g(N)
        best = best_growth_model(N, y)
        # log-R^2 can tie between adjacent families only on degenerate
        # data; clean synthetic data must pick its own family.
        assert best.model == name, (name, best)


def test_selection_robust_to_noise():
    rng = np.random.default_rng(0)
    y = 5.0 * N**2 * rng.uniform(0.8, 1.25, size=N.size)
    best = best_growth_model(N, y)
    assert best.model in ("quadratic", "n^1.5")
    # quadratic must beat linear decisively
    lin = fit_growth(N, y, "linear")
    quad = fit_growth(N, y, "quadratic")
    assert quad.r_squared > lin.r_squared


def test_candidate_restriction():
    y = 2.0 * N
    best = best_growth_model(N, y, candidates=("log", "quadratic"))
    assert best.model in ("log", "quadratic")


def test_predict():
    fit = fit_growth(N, 2.0 * N, "linear")
    assert fit.predict(10.0) == pytest.approx(20.0)
    out = fit.predict(np.array([1.0, 2.0]))
    assert np.allclose(out, [2.0, 4.0])


def test_validation():
    with pytest.raises(ConfigurationError):
        fit_growth(N, 2 * N, "cubic-ish")
    with pytest.raises(ConfigurationError):
        fit_growth([1.0], [2.0], "linear")  # too few points
    with pytest.raises(ConfigurationError):
        fit_growth([1.0, 2.0], [0.0, 1.0], "linear")  # non-positive y
    with pytest.raises(ConfigurationError):
        fit_growth([1.0, 2.0, 3.0], [1.0, 2.0], "linear")  # shape mismatch


def test_flat_curve_prefers_constant():
    y = np.full(N.size, 7.0)
    best = best_growth_model(N, y)
    assert best.model == "constant"


# ---------------------------------------------------------------- affine fits


def test_affine_recovers_offset_and_slope():
    from repro.analysis.fitting import fit_affine

    fit = fit_affine(N, 3.0 + 0.5 * N, "linear")
    assert fit.offset == pytest.approx(3.0)
    assert fit.coefficient == pytest.approx(0.5)
    assert fit.r_squared == pytest.approx(1.0)


def test_affine_distinguishes_floor_plus_linear_from_log():
    # The Figure 3a situation: a constant floor plus a gentle linear
    # term, over a small N grid. Through-origin fits are ambiguous;
    # affine fits are not.
    from repro.analysis.fitting import fit_affine

    y = 4.0 + 0.1 * N
    assert (
        fit_affine(N, y, "linear").r_squared > fit_affine(N, y, "log").r_squared
    )


def test_affine_predict():
    from repro.analysis.fitting import fit_affine

    fit = fit_affine(N, 1.0 + 2.0 * np.log1p(N), "log")
    assert fit.predict(10.0) == pytest.approx(1.0 + 2.0 * np.log1p(10.0))


def test_affine_validation():
    from repro.analysis.fitting import fit_affine

    with pytest.raises(ConfigurationError):
        fit_affine([1.0, 2.0], [1.0, 2.0], "linear")  # needs >= 3 points
    with pytest.raises(ConfigurationError):
        fit_affine(N, 2 * N, "septic")
