"""Tests for the closed-form lemma and theorem bounds."""

import math

import pytest

from repro.analysis.bounds import (
    ceil_log,
    lemma4_probability,
    lemma5_probability,
    strategy_probabilities,
    theorem1_lower_bounds,
)
from repro.core.distributions import basel_tail
from repro.errors import ConfigurationError


def test_strategy_probabilities_default_equiprobable():
    probs = strategy_probabilities()
    assert probs["1"] == pytest.approx(1 / 3)
    assert probs["2.k.0"] == pytest.approx(1 / 3)
    assert probs["2.k.l"] == pytest.approx(1 / 3)
    assert sum(probs.values()) == pytest.approx(1.0)


def test_strategy_probabilities_general():
    probs = strategy_probabilities(0.5, 0.25)
    assert probs["1"] == 0.5
    assert probs["2.k.0"] == pytest.approx(0.125)
    assert probs["2.k.l"] == pytest.approx(0.375)


def test_strategy_probabilities_validation():
    with pytest.raises(ConfigurationError):
        strategy_probabilities(0.0, 0.5)
    with pytest.raises(ConfigurationError):
        strategy_probabilities(0.5, 1.0)


def test_ceil_log_exact_powers():
    assert ceil_log(8, 2) == 3
    assert ceil_log(9, 2) == 4
    assert ceil_log(150**2, 150) == 2  # no float round-off at powers
    assert ceil_log(1, 7) == 1
    assert ceil_log(0.5, 7) == 1


def test_lemma4_is_a_valid_lower_bound_on_the_exact_tail():
    # Lemma 4: P[2.k with tau^k >= t] >= (1-q1) 6/(pi^2 ceil(log_tau t)).
    # The exact probability is (1-q1) * basel_tail(ceil(log_tau t)).
    q1, tau = 1 / 3, 5
    for t in (2, 5, 26, 125, 3000):
        k_min = ceil_log(t, tau)
        exact = (1 - q1) * basel_tail(k_min)
        assert lemma4_probability(t, tau, q1) <= exact + 1e-12


def test_lemma5_mirrors_lemma4_with_q2():
    assert lemma5_probability(10, 3, q2=0.5) == pytest.approx(
        lemma4_probability(10, 3, q1=0.5)
    )


def test_lemma_probabilities_decrease_in_t():
    prev = 1.0
    for t in (2, 10, 100, 1000, 10_000):
        cur = lemma4_probability(t, 3)
        assert cur <= prev
        prev = cur


def test_lemma_validation():
    with pytest.raises(ConfigurationError):
        lemma4_probability(10, 1.0)
    with pytest.raises(ConfigurationError):
        lemma5_probability(10, 3, q2=0.0)


def test_theorem1_defaults():
    bounds = theorem1_lower_bounds(100, 30)
    assert bounds.tau == 30  # tau defaults to F
    assert bounds.alpha == 1
    # Part 1: q1/2 * alpha F = 1/6 * 30 = 5.
    assert bounds.time_bound_case_i == pytest.approx(5.0)
    # Part 2.a: 3(1-q1)q2/(4 pi^2) alpha F = 3*(2/3)*0.5/(4 pi^2)*30.
    expected_iia = 3 * (2 / 3) * 0.5 / (4 * math.pi**2) * 30
    assert bounds.time_bound_case_iia == pytest.approx(expected_iia)
    assert bounds.time_bound == min(
        bounds.time_bound_case_i, bounds.time_bound_case_iia
    )


def test_theorem1_message_bound_includes_n_floor():
    # With a tiny F the F^2 term vanishes and N dominates.
    bounds = theorem1_lower_bounds(1000, 2)
    assert bounds.message_bound == 1000.0


def test_theorem1_message_bound_f_squared_term():
    n, f = 100, 30
    bounds = theorem1_lower_bounds(n, f, alpha=1)
    expected = f * f / 8 * 9 * (2 / 3) * 0.5 / (math.pi**4 * 1**2)
    assert bounds.message_bound == pytest.approx(max(n, expected))


def test_theorem1_alpha_scales_time_bound():
    b1 = theorem1_lower_bounds(100, 30, alpha=1)
    b4 = theorem1_lower_bounds(100, 30, alpha=4)
    assert b4.time_bound == pytest.approx(4 * b1.time_bound)


def test_theorem1_alpha_weakens_message_bound():
    # Larger alpha grows the log term, shrinking F^2/log^2 — the trade-off.
    b1 = theorem1_lower_bounds(100, 30, alpha=1, tau=2)
    b32 = theorem1_lower_bounds(100, 30, alpha=64, tau=2)
    assert b32.message_bound <= b1.message_bound


def test_theorem1_validation():
    with pytest.raises(ConfigurationError):
        theorem1_lower_bounds(1, 0)
    with pytest.raises(ConfigurationError):
        theorem1_lower_bounds(10, 10)
    with pytest.raises(ConfigurationError):
        theorem1_lower_bounds(10, 3, alpha=0)
    with pytest.raises(ConfigurationError):
        theorem1_lower_bounds(10, 3, tau=1)
