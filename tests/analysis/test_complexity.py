"""Tests for outcome-to-quantity extraction."""

import numpy as np
import pytest

from repro.analysis.complexity import aggregate_outcomes, complexities
from repro.errors import IncompleteRunError
from repro.sim.outcome import Outcome


def make_outcome(seed=0, sent_total=10, t_end=20, completed=True):
    n = 4
    sent = np.zeros(n, dtype=np.int64)
    sent[0] = sent_total
    return Outcome(
        n=n,
        f=1,
        seed=seed,
        protocol_name="p",
        adversary_name="a",
        completed=completed,
        rumor_gathering_ok=True,
        t_end=t_end,
        max_local_step_time=1,
        max_delivery_time=1,
        sent=sent,
        received=np.zeros(n, dtype=np.int64),
        bytes_sent=sent.copy(),
        crashed=(),
        crash_steps={},
        sleep_counts=np.ones(n, dtype=np.int64),
        wake_counts=np.zeros(n, dtype=np.int64),
    )


def test_complexities_extracts_pair():
    point = complexities(make_outcome(sent_total=42, t_end=10))
    assert point.message_complexity == 42
    assert point.time_complexity == 5.0
    assert point.n == 4 and point.f == 1


def test_complexities_guards_truncation():
    with pytest.raises(IncompleteRunError):
        complexities(make_outcome(completed=False))
    point = complexities(make_outcome(completed=False), allow_truncated=True)
    assert not point.completed


def test_aggregate_outcomes():
    outcomes = [make_outcome(seed=s, sent_total=10 * (s + 1)) for s in range(5)]
    msgs, times = aggregate_outcomes(outcomes)
    assert msgs.median == 30.0
    assert times.median == 10.0
    assert msgs.n_runs == 5
