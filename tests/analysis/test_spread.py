"""Tests for exposure-time reconstruction."""

import numpy as np
import pytest

from repro.analysis.spread import exposure_times
from repro.core.adversary import NullAdversary
from repro.core.strategies import CrashGroupStrategy, DelayGroupStrategy
from repro.errors import ConfigurationError
from repro.protocols.registry import make_protocol
from repro.sim.engine import simulate


def traced(protocol="round-robin", adversary=None, n=12, f=0, seed=0):
    return simulate(
        make_protocol(protocol),
        adversary or NullAdversary(),
        n=n,
        f=f,
        seed=seed,
        record_events=True,
    )


def test_requires_event_trace():
    report = simulate(
        make_protocol("flood"), NullAdversary(), n=5, f=0, seed=0
    )
    with pytest.raises(ConfigurationError):
        exposure_times(report, 0)


def test_gossip_id_validated():
    report = traced()
    with pytest.raises(ConfigurationError):
        exposure_times(report, 99)


def test_originator_exposed_at_zero():
    profile = exposure_times(traced(), 3)
    assert profile.times[3] == 0.0


def test_flood_exposes_everyone_in_one_hop():
    report = traced("flood", n=10)
    profile = exposure_times(report, 0)
    others = np.delete(profile.times, 0)
    # Flood emission at step 1, arrival at step 2.
    assert (others == 2.0).all()
    assert profile.exposed_fraction == 1.0


def test_round_robin_exposure_is_staggered():
    n = 10
    profile = exposure_times(traced("round-robin", n=n), 0)
    # Process 0 sends to 1, 2, ... in order; direct exposures are
    # increasing, possibly shortcut by relays carrying all-known.
    t = profile.times
    assert t[1] <= t[5] <= t[9] or np.isfinite(t).all()
    assert np.isfinite(t).all()


def test_quantile_step_monotone_in_fraction():
    profile = exposure_times(traced("push-pull", n=20), 0)
    assert profile.quantile_step(0.25) <= profile.quantile_step(0.5)
    assert profile.quantile_step(0.5) <= profile.quantile_step(1.0)


def test_quantile_validation():
    profile = exposure_times(traced(), 0)
    with pytest.raises(ConfigurationError):
        profile.quantile_step(0.0)
    with pytest.raises(ConfigurationError):
        profile.quantile_step(1.5)


def test_crashed_processes_excluded_from_quantiles():
    report = traced(
        "push-pull", adversary=CrashGroupStrategy(group=[4, 5]), n=12, f=4, seed=1
    )
    profile = exposure_times(report, 0)
    assert not profile.correct[4] and not profile.correct[5]
    # Quantiles are over the 10 correct processes and still finite.
    assert np.isfinite(profile.quantile_step(1.0))


def test_throttling_the_source_delays_exposure():
    n, f = 30, 9
    base = exposure_times(traced("push-pull", n=n, f=f, seed=3), 0)
    throttled_report = traced(
        "push-pull",
        adversary=DelayGroupStrategy(1, 1, group=[0]),
        n=n,
        f=f,
        seed=3,
    )
    throttled = exposure_times(throttled_report, 0)
    assert throttled.quantile_step(0.5) > 5 * base.quantile_step(0.5)


def test_exposure_never_before_cause():
    # No process may appear exposed earlier than the originator's
    # first possible emission.
    profile = exposure_times(traced("ears", n=15, seed=2), 0)
    others = np.delete(profile.times, 0)
    assert (others[np.isfinite(others)] >= 2).all()
