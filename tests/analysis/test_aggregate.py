"""Tests for median/quartile aggregation."""

import pytest

from repro.analysis.aggregate import aggregate_runs
from repro.errors import ConfigurationError


def test_single_value():
    stats = aggregate_runs([5.0])
    assert stats.median == 5.0
    assert stats.q1 == 5.0
    assert stats.q3 == 5.0
    assert stats.n_runs == 1
    assert stats.iqr == 0.0


def test_odd_count_median():
    stats = aggregate_runs([1, 2, 3, 4, 100])
    assert stats.median == 3.0
    assert stats.n_runs == 5


def test_quartiles():
    stats = aggregate_runs(list(range(1, 101)))
    assert stats.q1 == pytest.approx(25.75)
    assert stats.median == pytest.approx(50.5)
    assert stats.q3 == pytest.approx(75.25)


def test_median_robust_to_outlier():
    clean = aggregate_runs([10, 11, 12, 13, 14])
    dirty = aggregate_runs([10, 11, 12, 13, 10_000])
    assert dirty.median == pytest.approx(clean.median)


def test_empty_rejected():
    with pytest.raises(ConfigurationError):
        aggregate_runs([])


def test_str_rendering():
    text = str(aggregate_runs([1.0, 2.0, 3.0]))
    assert "2" in text and "x3" in text
