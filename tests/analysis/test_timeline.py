"""Tests for per-step timeline reconstruction."""

import pytest

from repro.analysis.timeline import build_timeline
from repro.core.adversary import NullAdversary
from repro.core.registry import make_adversary
from repro.core.strategies import CrashGroupStrategy
from repro.errors import ConfigurationError
from repro.protocols.registry import make_protocol
from repro.sim.engine import simulate


def traced(protocol="flood", adversary=None, n=10, f=0, seed=0):
    return simulate(
        make_protocol(protocol),
        adversary or NullAdversary(),
        n=n,
        f=f,
        seed=seed,
        record_events=True,
    )


def test_requires_event_trace():
    report = simulate(make_protocol("flood"), NullAdversary(), n=5, f=0, seed=0)
    with pytest.raises(ConfigurationError):
        build_timeline(report)


def test_totals_match_counters():
    report = traced("push-pull", n=20)
    timeline = build_timeline(report)
    assert sum(s.sends for s in timeline.steps) == report.trace.sent.sum()
    assert sum(s.deliveries for s in timeline.steps) == report.trace.received.sum()
    assert sum(s.crashes for s in timeline.steps) == report.outcome.crash_count


def test_flood_timeline_shape():
    n = 8
    timeline = build_timeline(traced("flood", n=n))
    by_step = {s.step: s for s in timeline.steps}
    # Everyone sends at its first local step (emission stamped step 1),
    # sleeps at step 0, deliveries land at step 2.
    assert by_step[1].sends == n * (n - 1)
    assert by_step[0].sleeps == n
    assert by_step[2].deliveries == n * (n - 1)


def test_awake_count_reaches_zero_at_quiescence():
    timeline = build_timeline(traced("push-pull", n=15))
    assert timeline.steps[-1].awake_after == 0
    # And never negative anywhere.
    assert all(s.awake_after >= 0 for s in timeline.steps)


def test_crash_of_sleeping_process_keeps_awake_count_consistent():
    report = traced(
        "flood", adversary=CrashGroupStrategy(group=[1, 2]), n=10, f=4, seed=1
    )
    timeline = build_timeline(report)
    assert all(0 <= s.awake_after <= 10 for s in timeline.steps)
    assert timeline.steps[-1].awake_after == 0


def test_quiet_gaps_under_delay_attack():
    report = simulate(
        make_protocol("ears"),
        make_adversary("str-2.1.1"),
        n=30,
        f=9,
        seed=0,
        record_events=True,
    )
    timeline = build_timeline(report)
    gaps = timeline.quiet_gaps
    assert gaps, "a delay attack must produce fast-forwarded dead air"
    longest = max(b - a for a, b in gaps)
    assert longest >= 5  # gaps of order tau = F = 9 (C acts every tau steps)


def test_series_accessor_and_validation():
    timeline = build_timeline(traced("flood", n=6))
    xs, ys = timeline.series("sends")
    assert len(xs) == len(ys) == len(timeline.steps)
    with pytest.raises(ConfigurationError):
        timeline.series("step")
    with pytest.raises(ConfigurationError):
        timeline.series("bananas")


def test_busiest_step():
    timeline = build_timeline(traced("flood", n=8))
    assert timeline.busiest_step.sends == 8 * 7
