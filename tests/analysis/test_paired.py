"""Tests for seed-paired damage statistics."""

import pytest

from repro.analysis.paired import paired_damage
from repro.errors import ConfigurationError
from repro.experiments.config import TrialSpec
from repro.experiments.runner import run_trial


def outcomes(adversary: str, seeds=range(4), n=24, f=7, protocol="ears"):
    return [
        run_trial(
            TrialSpec(protocol=protocol, adversary=adversary, n=n, f=f, seed=s)
        )
        for s in seeds
    ]


def test_null_vs_null_is_unity():
    base = outcomes("none")
    summary = paired_damage(base, outcomes("none"))
    assert summary.pairs == 4
    assert summary.message_ratio.median == pytest.approx(1.0)
    assert summary.time_ratio.median == pytest.approx(1.0)


def test_attack_ratios_exceed_one():
    base = outcomes("none")
    attacked = outcomes("str-2.1.0")
    summary = paired_damage(base, attacked)
    assert summary.time_ratio.median > 1.5  # the EARS isolation wall
    assert summary.message_ratio.median > 1.0


def test_seed_mismatch_rejected():
    base = outcomes("none", seeds=range(3))
    attacked = outcomes("str-1", seeds=range(1, 4))
    with pytest.raises(ConfigurationError, match="same seeds"):
        paired_damage(base, attacked)


def test_config_mismatch_rejected():
    base = outcomes("none", n=24)
    attacked = outcomes("none", n=26)
    with pytest.raises(ConfigurationError, match="differ in N"):
        paired_damage(base, attacked)


def test_empty_rejected():
    with pytest.raises(ConfigurationError):
        paired_damage([], [])


def test_str_rendering():
    base = outcomes("none", seeds=range(2))
    text = str(paired_damage(base, outcomes("str-1", seeds=range(2))))
    assert "seed pairs" in text and "messages x" in text
