"""Tests for content-addressed trial keys."""

import subprocess
import sys

import pytest

from repro.campaign.keys import spec_fingerprint, trial_key
from repro.errors import ConfigurationError
from repro.experiments.config import TrialSpec


def spec(**overrides) -> TrialSpec:
    base = dict(protocol="flood", adversary="ugf", n=10, f=3, seed=0)
    base.update(overrides)
    return TrialSpec(**base)


def test_key_is_deterministic():
    assert trial_key(spec()) == trial_key(spec())


def test_key_depends_on_every_field():
    base = trial_key(spec())
    assert trial_key(spec(protocol="push-pull")) != base
    assert trial_key(spec(adversary="none")) != base
    assert trial_key(spec(n=11)) != base
    assert trial_key(spec(f=4)) != base
    assert trial_key(spec(seed=1)) != base
    assert trial_key(spec(max_steps=99)) != base
    assert trial_key(spec(environment="jitter:2,2")) != base
    assert trial_key(spec(adversary_kwargs=(("q1", 0.5),))) != base
    assert trial_key(spec(protocol_kwargs=(("eps", 0.0),))) != base


def test_kwarg_order_does_not_split_the_cache():
    a = spec(adversary_kwargs=(("q1", 0.5), ("q2", 0.25)))
    b = spec(adversary_kwargs=(("q2", 0.25), ("q1", 0.5)))
    assert trial_key(a) == trial_key(b)


def test_duplicate_kwarg_names_rejected():
    with pytest.raises(ConfigurationError, match="duplicate"):
        trial_key(spec(adversary_kwargs=(("q1", 0.5), ("q1", 0.6))))


def test_non_json_kwargs_rejected():
    with pytest.raises(ConfigurationError, match="JSON"):
        trial_key(spec(adversary_kwargs=(("group", {1, 2}),)))


def test_fingerprint_is_plain_json_data():
    fp = spec_fingerprint(spec(adversary_kwargs=(("q1", 0.5),)))
    assert fp["protocol"] == "flood"
    assert fp["adversary_kwargs"] == [["q1", 0.5]]
    assert "version" in fp


def test_key_stable_across_processes():
    """The content address must be machine-checkable from any process."""
    code = (
        "from repro.campaign.keys import trial_key\n"
        "from repro.experiments.config import TrialSpec\n"
        "print(trial_key(TrialSpec(protocol='flood', adversary='ugf', "
        "n=10, f=3, seed=0, adversary_kwargs=(('q1', 0.5),))), end='')\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, check=True
    )
    assert out.stdout == trial_key(spec(adversary_kwargs=(("q1", 0.5),)))
