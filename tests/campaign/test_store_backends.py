"""Tests for the pluggable store backends (docs/SERVICE.md).

Covers the sharded backend (round trip, offset-index tail scan,
compaction), backend auto-detection, the corrupt-record quarantine
path, the non-POSIX unlocked-append warning, and doctor/check against
a sharded layout.
"""

import json

import pytest

from repro.campaign.keys import spec_fingerprint, trial_key
from repro.campaign.sharded import INDEX_FILENAME, ShardedBackend, shard_of
from repro.campaign.store import TrialStore, discover_store_files
from repro.experiments.config import TrialSpec
from repro.experiments.runner import run_trial
from repro.obs.registry import MetricsRegistry


def trial(seed: int = 0) -> TrialSpec:
    return TrialSpec(protocol="flood", adversary="none", n=8, f=2, seed=seed)


def fill(store: TrialStore, seeds) -> dict[str, TrialSpec]:
    keys = {}
    for seed in seeds:
        spec = trial(seed)
        key = trial_key(spec)
        store.put(key, spec_fingerprint(spec), run_trial(spec))
        keys[key] = spec
    return keys


# -- sharded round trip --------------------------------------------------------


def test_sharded_round_trip_and_reload(tmp_path):
    with TrialStore(tmp_path, backend="sharded", shards=4) as store:
        keys = fill(store, range(8))
        assert len(store) == 8
        for key in keys:
            assert store.get(key) is not None

    # Records landed in the shard their content address names.
    files = discover_store_files(tmp_path)
    assert files and all(f.name.startswith("trials-") for f in files)
    shard_names = {f"trials-{shard_of(k, 4):02d}.jsonl" for k in keys}
    assert {f.name for f in files} == shard_names

    reloaded = TrialStore(tmp_path, backend="sharded")
    assert len(reloaded) == 8
    for key, spec in keys.items():
        got = reloaded.get(key)
        assert got is not None
        assert got.n == spec.n


def test_auto_detection_picks_layout(tmp_path):
    jsonl_dir = tmp_path / "a"
    sharded_dir = tmp_path / "b"
    with TrialStore(jsonl_dir, backend="jsonl") as s:
        fill(s, [0])
    with TrialStore(sharded_dir, backend="sharded") as s:
        fill(s, [0])

    assert TrialStore(jsonl_dir).backend.name == "jsonl"
    assert TrialStore(sharded_dir).backend.name == "sharded"
    # A fresh directory defaults to the single-file layout.
    assert TrialStore(tmp_path / "fresh").backend.name == "jsonl"
    # Both auto-opened stores actually serve their records.
    key = trial_key(trial(0))
    assert TrialStore(jsonl_dir).get(key) is not None
    assert TrialStore(sharded_dir).get(key) is not None


def test_existing_shard_count_wins(tmp_path):
    with TrialStore(tmp_path, backend="sharded", shards=4) as s:
        keys = fill(s, range(8))
    # Reopening with a different requested count keeps the on-disk
    # fan-out: record placement must stay stable.
    store = TrialStore(tmp_path, backend="sharded", shards=32)
    assert store.backend.shards == 4
    assert all(store.get(k) is not None for k in keys)


# -- the offset index ----------------------------------------------------------


def test_offset_index_written_on_close_and_used_for_tail_scan(tmp_path):
    with TrialStore(tmp_path, backend="sharded", shards=2) as store:
        keys = fill(store, range(4))
    index_path = tmp_path / INDEX_FILENAME
    assert index_path.exists()
    indexed = json.loads(index_path.read_text())
    assert set(indexed["entries"]) == set(keys)

    # Another session appends past the indexed sizes...
    with TrialStore(tmp_path, backend="sharded") as store:
        keys.update(fill(store, range(4, 7)))

    # ...and a third loads via the index + tail scan and sees all.
    backend = ShardedBackend(tmp_path)
    backend.load()
    assert set(backend._entries) == set(keys)
    store = TrialStore(tmp_path, backend="sharded")
    assert all(store.get(k) is not None for k in keys)


def test_deleted_index_costs_only_a_full_scan(tmp_path):
    with TrialStore(tmp_path, backend="sharded", shards=2) as store:
        keys = fill(store, range(4))
    (tmp_path / INDEX_FILENAME).unlink()
    store = TrialStore(tmp_path, backend="sharded")
    assert all(store.get(k) is not None for k in keys)


def test_shard_rewritten_behind_index_triggers_full_rescan(tmp_path):
    with TrialStore(tmp_path, backend="sharded", shards=1) as store:
        keys = list(fill(store, range(3)))
    shard = tmp_path / "trials-00.jsonl"
    lines = shard.read_text().splitlines(keepends=True)
    # External rewrite: drop the first record (offsets all shift).
    shard.write_text("".join(lines[1:]))

    store = TrialStore(tmp_path, backend="sharded")
    assert store.get(keys[0]) is None
    assert store.get(keys[1]) is not None
    assert store.get(keys[2]) is not None


def test_torn_shard_tail_is_skipped_not_fatal(tmp_path):
    with TrialStore(tmp_path, backend="sharded", shards=1) as store:
        keys = list(fill(store, range(2)))
    (tmp_path / INDEX_FILENAME).unlink()
    shard = tmp_path / "trials-00.jsonl"
    data = shard.read_bytes()
    shard.write_bytes(data[: len(data) - len(data) // 4])  # tear the tail

    store = TrialStore(tmp_path, backend="sharded")
    assert store.get(keys[0]) is not None
    assert store.get(keys[1]) is None
    assert store.skipped_lines == 1


# -- compaction ----------------------------------------------------------------


def test_compact_drops_duplicates_and_torn_lines(tmp_path):
    spec = trial(0)
    key = trial_key(spec)
    outcome = run_trial(spec)
    with TrialStore(tmp_path, backend="sharded", shards=2) as store:
        for _ in range(3):  # two superseded rewrites
            store.put(key, spec_fingerprint(spec), outcome)
        fill(store, [1])
    shard = tmp_path / f"trials-{shard_of(key, 2):02d}.jsonl"
    with shard.open("a") as fh:
        fh.write("torn fragm")  # crash mid-append
    before = sum(f.stat().st_size for f in discover_store_files(tmp_path))

    store = TrialStore(tmp_path, backend="sharded")
    report = store.compact()
    assert report.records_kept == 2
    assert report.duplicates_dropped == 2
    assert report.corrupt_dropped == 1
    assert report.bytes_reclaimed > 0
    after = sum(f.stat().st_size for f in discover_store_files(tmp_path))
    assert after == before - report.bytes_reclaimed

    # The compacted store still serves everything, cleanly.
    assert store.get(key) is not None
    reloaded = TrialStore(tmp_path)
    assert len(reloaded) == 2
    assert reloaded.skipped_lines == 0


def test_compact_drop_keys_quarantines_records(tmp_path):
    with TrialStore(tmp_path, backend="jsonl") as store:
        keys = list(fill(store, range(3)))
    store = TrialStore(tmp_path)
    report = store.compact(drop_keys={keys[0]})
    assert report.quarantined_dropped == 1
    assert store.get(keys[0]) is None
    assert store.get(keys[1]) is not None
    assert TrialStore(tmp_path).get(keys[0]) is None  # gone from disk


# -- satellite: corrupt records leave the disk through compaction --------------


@pytest.mark.parametrize("backend", ["jsonl", "sharded"])
def test_corrupt_record_is_quarantined_on_get(tmp_path, backend):
    spec = trial(0)
    key = trial_key(spec)
    metrics = MetricsRegistry()
    with TrialStore(tmp_path, backend=backend) as store:
        fill(store, [1])
    # Corrupt the record *payload* in place: still valid JSON with a
    # good key, but the wire no longer decodes into an Outcome.
    bad = json.dumps({"key": key, "spec": spec_fingerprint(spec), "wire": []})
    target = discover_store_files(tmp_path)[0] if backend == "jsonl" else (
        tmp_path / f"trials-{shard_of(key, 16):02d}.jsonl"
    )
    with target.open("a") as fh:
        fh.write(bad + "\n")

    store = TrialStore(tmp_path, backend=backend, metrics=metrics)
    assert key in store
    assert store.get(key) is None  # corrupt = miss
    assert metrics.counters["store.corrupt_records"] == 1
    assert key not in store  # forgotten in memory...

    # ...and removed from disk via the compaction path: a future
    # session never pays for it again.
    reloaded = TrialStore(tmp_path, backend=backend)
    assert key not in reloaded
    assert all(key not in f.read_text() for f in discover_store_files(tmp_path))
    # The good record survived the compaction.
    assert reloaded.get(trial_key(trial(1))) is not None


# -- satellite: non-POSIX platforms warn once ----------------------------------


def test_unlocked_append_warns_once_and_counts(tmp_path, monkeypatch):
    from repro.campaign import store as store_mod

    monkeypatch.setattr(store_mod, "fcntl", None)
    monkeypatch.setattr(store_mod, "_unlocked_warned", False)
    metrics = MetricsRegistry()

    store = TrialStore(tmp_path, metrics=metrics)
    with pytest.warns(RuntimeWarning, match="without file locking"):
        fill(store, [0])
    # Subsequent appends count but do not warn again.
    import warnings as _warnings

    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        fill(store, [1])
    assert metrics.counters["store.unlocked_appends"] == 2
    # The store still works without locking.
    assert len(TrialStore(tmp_path)) == 2


# -- doctor / check against the sharded layout ---------------------------------


def test_doctor_scans_and_repairs_sharded_store(tmp_path):
    from repro.chaos.doctor import diagnose

    with TrialStore(tmp_path, backend="sharded", shards=2) as store:
        keys = list(fill(store, range(4)))
    torn_shard = tmp_path / f"trials-{shard_of(keys[0], 2):02d}.jsonl"
    with torn_shard.open("ab") as fh:
        fh.write(b'{"key": "torn')

    report = diagnose(tmp_path)
    assert not report.ok
    torn = [f for f in report.findings if f.kind == "torn-tail"]
    assert len(torn) == 1 and torn[0].file == torn_shard.name

    report = diagnose(tmp_path, repair=True)
    assert report.ok
    assert report.records == 4
    assert any(torn_shard.name in action for action in report.repairs)
    assert TrialStore(tmp_path).get(keys[0]) is not None


def test_audit_covers_sharded_store(tmp_path):
    from repro.check import audit_cache

    with TrialStore(tmp_path, backend="sharded", shards=2) as store:
        fill(store, range(4))
    audit = audit_cache(tmp_path, replay=False)
    assert audit.ok
    assert len(audit.records) == 4
