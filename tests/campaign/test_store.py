"""Tests for the append-only JSONL trial store."""

import json

import numpy as np

from repro.campaign.keys import spec_fingerprint, trial_key
from repro.campaign.store import TrialStore
from repro.experiments.config import TrialSpec
from repro.experiments.runner import run_trial


def trial(seed: int = 0) -> TrialSpec:
    return TrialSpec(protocol="flood", adversary="none", n=8, f=2, seed=seed)


def test_miss_then_hit(tmp_path):
    store = TrialStore(tmp_path)
    spec = trial()
    key = trial_key(spec)
    assert store.get(key) is None
    assert key not in store
    outcome = run_trial(spec)
    store.put(key, spec_fingerprint(spec), outcome)
    assert key in store
    got = store.get(key)
    assert got is not None
    assert got.message_complexity() == outcome.message_complexity()


def test_survives_reload(tmp_path):
    spec = trial()
    key = trial_key(spec)
    outcome = run_trial(spec)
    with TrialStore(tmp_path) as store:
        store.put(key, spec_fingerprint(spec), outcome)

    reloaded = TrialStore(tmp_path)
    got = reloaded.get(key)
    assert got is not None
    assert got.n == outcome.n
    assert np.array_equal(got.sent, outcome.sent)


def test_truncated_final_line_is_skipped_not_fatal(tmp_path):
    specs = [trial(0), trial(1)]
    with TrialStore(tmp_path) as store:
        for s in specs:
            store.put(trial_key(s), spec_fingerprint(s), run_trial(s))

    # Simulate a crash mid-append: chop the last line in half.
    path = TrialStore(tmp_path).path
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])

    store = TrialStore(tmp_path)
    assert store.get(trial_key(specs[0])) is not None
    assert store.get(trial_key(specs[1])) is None
    assert store.skipped_lines == 1


def test_garbage_lines_are_skipped(tmp_path):
    spec = trial()
    with TrialStore(tmp_path) as store:
        store.put(trial_key(spec), spec_fingerprint(spec), run_trial(spec))
    path = TrialStore(tmp_path).path
    with path.open("a") as fh:
        fh.write("not json at all\n")
        fh.write(json.dumps({"wrong": "shape"}) + "\n")
        fh.write(json.dumps({"key": 7, "outcome": {}}) + "\n")

    store = TrialStore(tmp_path)
    assert len(store) == 1
    assert store.skipped_lines == 3
    assert store.get(trial_key(spec)) is not None


def test_appends_accumulate_across_sessions(tmp_path):
    for seed in range(3):
        s = trial(seed)
        with TrialStore(tmp_path) as store:
            store.put(trial_key(s), spec_fingerprint(s), run_trial(s))
    assert len(TrialStore(tmp_path)) == 3


def test_record_is_durable_before_put_returns(tmp_path):
    # Crash-safety contract: the bytes are on disk (flush + fsync) the
    # moment put() returns — a second, independent reader sees them
    # without the writer closing its handle first.
    spec = trial()
    key = trial_key(spec)
    outcome = run_trial(spec)
    writer = TrialStore(tmp_path)
    writer.put(key, spec_fingerprint(spec), outcome)
    try:
        reader = TrialStore(tmp_path)
        assert reader.get(key) is not None
    finally:
        writer.close()


def test_each_record_is_exactly_one_line(tmp_path):
    # One write() per record: a reader (or a crash) can never observe
    # a record split across lines.
    specs = [trial(seed) for seed in range(3)]
    with TrialStore(tmp_path) as store:
        for spec in specs:
            store.put(trial_key(spec), spec_fingerprint(spec), run_trial(spec))
    raw = (tmp_path / "trials.jsonl").read_text()
    assert raw.endswith("\n")
    lines = raw.splitlines()
    assert len(lines) == 3
    assert {json.loads(line)["key"] for line in lines} == {
        trial_key(spec) for spec in specs
    }


def test_interleaved_writers_do_not_corrupt_the_store(tmp_path):
    # Two stores appending to the same file (two terminals sharing a
    # cache volume); the flock guarantees whole-line appends.
    a, b = TrialStore(tmp_path), TrialStore(tmp_path)
    spec_a, spec_b = trial(10), trial(11)
    outcome_a, outcome_b = run_trial(spec_a), run_trial(spec_b)
    a.put(trial_key(spec_a), spec_fingerprint(spec_a), outcome_a)
    b.put(trial_key(spec_b), spec_fingerprint(spec_b), outcome_b)
    a.close(), b.close()
    fresh = TrialStore(tmp_path)
    assert fresh.skipped_lines == 0
    assert fresh.get(trial_key(spec_a)) is not None
    assert fresh.get(trial_key(spec_b)) is not None
    assert fresh.skipped_lines == 0


# -- wire-format records ---------------------------------------------------------


def test_new_records_are_wire_format(tmp_path):
    store = TrialStore(tmp_path)
    spec = trial()
    store.put(trial_key(spec), spec_fingerprint(spec), run_trial(spec))
    record = json.loads((tmp_path / "trials.jsonl").read_text())
    assert isinstance(record["wire"], list)
    assert "outcome" not in record


def test_legacy_dict_records_still_load(tmp_path):
    spec = trial()
    key = trial_key(spec)
    outcome = run_trial(spec)
    legacy = {
        "key": key,
        "spec": spec_fingerprint(spec),
        "outcome": outcome.to_dict(),
    }
    (tmp_path / "trials.jsonl").write_text(
        json.dumps(legacy, separators=(",", ":")) + "\n"
    )
    got = TrialStore(tmp_path).get(key)
    assert got is not None
    assert got.to_dict() == outcome.to_dict()


def test_put_many_appends_every_record_atomically(tmp_path):
    specs = [trial(seed) for seed in range(3)]
    items = [
        (trial_key(s), spec_fingerprint(s), run_trial(s)) for s in specs
    ]
    with TrialStore(tmp_path) as store:
        store.put_many(items)
    lines = (tmp_path / "trials.jsonl").read_text().splitlines()
    assert len(lines) == 3
    reloaded = TrialStore(tmp_path)
    for (key, _, outcome), spec in zip(items, specs):
        got = reloaded.get(key)
        assert got is not None
        assert np.array_equal(got.sent, outcome.sent)
