"""Tests for the append-only JSONL trial store."""

import json

import numpy as np

from repro.campaign.keys import spec_fingerprint, trial_key
from repro.campaign.store import TrialStore
from repro.experiments.config import TrialSpec
from repro.experiments.runner import run_trial


def trial(seed: int = 0) -> TrialSpec:
    return TrialSpec(protocol="flood", adversary="none", n=8, f=2, seed=seed)


def test_miss_then_hit(tmp_path):
    store = TrialStore(tmp_path)
    spec = trial()
    key = trial_key(spec)
    assert store.get(key) is None
    assert key not in store
    outcome = run_trial(spec)
    store.put(key, spec_fingerprint(spec), outcome)
    assert key in store
    got = store.get(key)
    assert got is not None
    assert got.message_complexity() == outcome.message_complexity()


def test_survives_reload(tmp_path):
    spec = trial()
    key = trial_key(spec)
    outcome = run_trial(spec)
    with TrialStore(tmp_path) as store:
        store.put(key, spec_fingerprint(spec), outcome)

    reloaded = TrialStore(tmp_path)
    got = reloaded.get(key)
    assert got is not None
    assert got.n == outcome.n
    assert np.array_equal(got.sent, outcome.sent)


def test_truncated_final_line_is_skipped_not_fatal(tmp_path):
    specs = [trial(0), trial(1)]
    with TrialStore(tmp_path) as store:
        for s in specs:
            store.put(trial_key(s), spec_fingerprint(s), run_trial(s))

    # Simulate a crash mid-append: chop the last line in half.
    path = TrialStore(tmp_path).path
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])

    store = TrialStore(tmp_path)
    assert store.get(trial_key(specs[0])) is not None
    assert store.get(trial_key(specs[1])) is None
    assert store.skipped_lines == 1


def test_garbage_lines_are_skipped(tmp_path):
    spec = trial()
    with TrialStore(tmp_path) as store:
        store.put(trial_key(spec), spec_fingerprint(spec), run_trial(spec))
    path = TrialStore(tmp_path).path
    with path.open("a") as fh:
        fh.write("not json at all\n")
        fh.write(json.dumps({"wrong": "shape"}) + "\n")
        fh.write(json.dumps({"key": 7, "outcome": {}}) + "\n")

    store = TrialStore(tmp_path)
    assert len(store) == 1
    assert store.skipped_lines == 3
    assert store.get(trial_key(spec)) is not None


def test_appends_accumulate_across_sessions(tmp_path):
    for seed in range(3):
        s = trial(seed)
        with TrialStore(tmp_path) as store:
            store.put(trial_key(s), spec_fingerprint(s), run_trial(s))
    assert len(TrialStore(tmp_path)) == 3


def test_record_is_durable_before_put_returns(tmp_path):
    # Crash-safety contract: the bytes are on disk (flush + fsync) the
    # moment put() returns — a second, independent reader sees them
    # without the writer closing its handle first.
    spec = trial()
    key = trial_key(spec)
    outcome = run_trial(spec)
    writer = TrialStore(tmp_path)
    writer.put(key, spec_fingerprint(spec), outcome)
    try:
        reader = TrialStore(tmp_path)
        assert reader.get(key) is not None
    finally:
        writer.close()


def test_each_record_is_exactly_one_line(tmp_path):
    # One write() per record: a reader (or a crash) can never observe
    # a record split across lines.
    specs = [trial(seed) for seed in range(3)]
    with TrialStore(tmp_path) as store:
        for spec in specs:
            store.put(trial_key(spec), spec_fingerprint(spec), run_trial(spec))
    raw = (tmp_path / "trials.jsonl").read_text()
    assert raw.endswith("\n")
    lines = raw.splitlines()
    assert len(lines) == 3
    assert {json.loads(line)["key"] for line in lines} == {
        trial_key(spec) for spec in specs
    }


def test_interleaved_writers_do_not_corrupt_the_store(tmp_path):
    # Two stores appending to the same file (two terminals sharing a
    # cache volume); the flock guarantees whole-line appends.
    a, b = TrialStore(tmp_path), TrialStore(tmp_path)
    spec_a, spec_b = trial(10), trial(11)
    outcome_a, outcome_b = run_trial(spec_a), run_trial(spec_b)
    a.put(trial_key(spec_a), spec_fingerprint(spec_a), outcome_a)
    b.put(trial_key(spec_b), spec_fingerprint(spec_b), outcome_b)
    a.close(), b.close()
    fresh = TrialStore(tmp_path)
    assert fresh.skipped_lines == 0
    assert fresh.get(trial_key(spec_a)) is not None
    assert fresh.get(trial_key(spec_b)) is not None
    assert fresh.skipped_lines == 0


# -- wire-format records ---------------------------------------------------------


def test_new_records_are_wire_format(tmp_path):
    store = TrialStore(tmp_path)
    spec = trial()
    store.put(trial_key(spec), spec_fingerprint(spec), run_trial(spec))
    record = json.loads((tmp_path / "trials.jsonl").read_text())
    assert isinstance(record["wire"], list)
    assert "outcome" not in record


def test_legacy_dict_records_still_load(tmp_path):
    spec = trial()
    key = trial_key(spec)
    outcome = run_trial(spec)
    legacy = {
        "key": key,
        "spec": spec_fingerprint(spec),
        "outcome": outcome.to_dict(),
    }
    (tmp_path / "trials.jsonl").write_text(
        json.dumps(legacy, separators=(",", ":")) + "\n"
    )
    got = TrialStore(tmp_path).get(key)
    assert got is not None
    assert got.to_dict() == outcome.to_dict()


def test_put_many_appends_every_record_atomically(tmp_path):
    specs = [trial(seed) for seed in range(3)]
    items = [
        (trial_key(s), spec_fingerprint(s), run_trial(s)) for s in specs
    ]
    with TrialStore(tmp_path) as store:
        store.put_many(items)
    lines = (tmp_path / "trials.jsonl").read_text().splitlines()
    assert len(lines) == 3
    reloaded = TrialStore(tmp_path)
    for (key, _, outcome), spec in zip(items, specs):
        got = reloaded.get(key)
        assert got is not None
        assert np.array_equal(got.sent, outcome.sent)


# -- torn-tail recovery ----------------------------------------------------------


def test_append_onto_torn_tail_self_heals(tmp_path):
    from repro.chaos.inject import tear_tail

    specs = [trial(0), trial(1)]
    with TrialStore(tmp_path) as store:
        for s in specs:
            store.put(trial_key(s), spec_fingerprint(s), run_trial(s))
    path = tmp_path / "trials.jsonl"
    assert tear_tail(path) > 0

    # A fresh session appends straight onto the torn file; the store
    # must newline-terminate the fragment first so the new record does
    # not merge into it and get corrupted too.
    late = trial(2)
    with TrialStore(tmp_path) as store:
        store.put(trial_key(late), spec_fingerprint(late), run_trial(late))

    fresh = TrialStore(tmp_path)
    assert fresh.get(trial_key(specs[0])) is not None  # untouched
    assert fresh.get(trial_key(specs[1])) is None  # torn: lost, skipped
    assert fresh.get(trial_key(late)) is not None  # new record intact
    assert fresh.skipped_lines == 1  # damage confined to the fragment


def test_torn_tail_resume_reruns_only_the_lost_trial(tmp_path):
    from repro.campaign import Campaign
    from repro.chaos.inject import tear_tail

    specs = [trial(seed) for seed in range(4)]
    with Campaign(cache_dir=tmp_path, workers=1) as campaign:
        assert all(r.ok for r in campaign.run_trials(specs))
    assert tear_tail(tmp_path / "trials.jsonl") > 0

    # Resume: the reader skips the torn record, the campaign re-runs
    # exactly that one trial, and the healed store serves all four.
    with Campaign(cache_dir=tmp_path, workers=1) as campaign:
        results = campaign.run_trials(specs)
    assert all(r.ok for r in results)
    assert sum(not r.cached for r in results) == 1
    assert len(TrialStore(tmp_path)) == 4


def test_doctor_repair_truncates_a_torn_tail_cleanly(tmp_path):
    from repro.chaos.doctor import diagnose
    from repro.chaos.inject import tear_tail

    specs = [trial(0), trial(1)]
    with TrialStore(tmp_path) as store:
        store.put_many(
            [(trial_key(s), spec_fingerprint(s), run_trial(s)) for s in specs]
        )
    tear_tail(tmp_path / "trials.jsonl")
    report = diagnose(tmp_path, repair=True)
    assert report.ok and report.repairs
    # Byte-clean again: one whole-line record, no fragment.
    raw = (tmp_path / "trials.jsonl").read_bytes()
    assert raw.endswith(b"\n") and raw.count(b"\n") == 1
    assert TrialStore(tmp_path).skipped_lines == 0


def test_transient_fsync_failure_is_absorbed(tmp_path):
    from repro.chaos.inject import FaultInjector
    from repro.chaos.plan import FaultPlan, FaultRule
    from repro.obs.registry import MetricsRegistry

    plan = FaultPlan(
        seed=17,
        rules=(FaultRule(site="store.fsync", rate=1.0, attempts=2),),
    )
    metrics = MetricsRegistry()
    spec = trial(0)
    with TrialStore(
        tmp_path, metrics=metrics, injector=FaultInjector(plan)
    ) as store:
        store.put(trial_key(spec), spec_fingerprint(spec), run_trial(spec))
    # Two injected failures, absorbed by the bounded retry; the record
    # is durable and a fresh reader sees it.
    assert metrics.counters["store.fsync_retries"] == 2
    assert TrialStore(tmp_path).get(trial_key(spec)) is not None


def test_persistent_fsync_failure_raises_campaign_error(tmp_path):
    import pytest

    from repro.campaign import store as store_mod
    from repro.chaos.inject import FaultInjector
    from repro.chaos.plan import FaultPlan, FaultRule
    from repro.errors import CampaignError

    plan = FaultPlan(
        seed=17,
        rules=(FaultRule(site="store.fsync", rate=1.0, attempts=None),),
    )
    spec = trial(0)
    with TrialStore(tmp_path, injector=FaultInjector(plan)) as store:
        original_backoff = store_mod._FSYNC_BACKOFF
        store_mod._FSYNC_BACKOFF = 0.0  # keep the failing test fast
        try:
            with pytest.raises(CampaignError, match="fsync attempts"):
                store.put(trial_key(spec), spec_fingerprint(spec), run_trial(spec))
        finally:
            store_mod._FSYNC_BACKOFF = original_backoff
