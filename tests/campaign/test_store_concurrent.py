"""Two processes appending to one store under flock contention.

The store's durability contract (docs/CAMPAIGN.md, docs/SERVICE.md):
appends happen as one whole-lines write under an exclusive ``flock``,
so concurrent campaigns sharing a cache directory interleave at
*record* granularity — never inside a record. These tests drive two
real processes (not threads: flock contention is cross-process) and
assert every record survives, for both store layouts.
"""

import json
import subprocess
import sys
import textwrap

import pytest

from repro.campaign.store import TrialStore, discover_store_files

_WRITER = textwrap.dedent(
    """
    import json, sys
    from repro.campaign.store import TrialStore
    from repro.experiments.config import TrialSpec
    from repro.campaign.keys import spec_fingerprint, trial_key
    from repro.experiments.runner import run_trial

    cache_dir, backend, start, count = sys.argv[1:5]
    spec = TrialSpec(protocol="flood", adversary="none", n=8, f=2, seed=0)
    outcome = run_trial(spec)  # one real outcome, re-keyed per record
    store = TrialStore(cache_dir, backend=backend)
    for i in range(int(start), int(start) + int(count)):
        # Distinct fingerprints -> distinct keys; tiny batches so the
        # two writers' flock acquisitions interleave heavily.
        fingerprint = dict(spec_fingerprint(spec), seed=i)
        store.put(f"{i:064x}", fingerprint, outcome)
    store.close()
    print("done", start)
    """
)


@pytest.mark.parametrize("backend", ["jsonl", "sharded"])
def test_two_processes_append_without_corruption(tmp_path, backend):
    per_writer = 40
    procs = [
        subprocess.Popen(
            [
                sys.executable,
                "-c",
                _WRITER,
                str(tmp_path),
                backend,
                str(start),
                str(per_writer),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for start in (0, per_writer)
    ]
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        assert "done" in out

    # Every record from both writers is present and parseable: the
    # flock keeps whole-record framing, so nothing interleaved.
    store = TrialStore(tmp_path, backend=backend)
    assert len(store) == 2 * per_writer
    assert store.skipped_lines == 0
    for i in range(2 * per_writer):
        assert f"{i:064x}" in store

    raw_lines = [
        line
        for f in discover_store_files(tmp_path)
        for line in f.read_text().splitlines()
        if line.strip()
    ]
    assert len(raw_lines) == 2 * per_writer
    for line in raw_lines:
        json.loads(line)  # every line is a complete record
