"""Unit tests for the chunked worker pool."""

import json
import threading
import warnings
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

from repro.campaign import pool as pool_mod
from repro.campaign.pool import WorkerPool, run_trial_batch
from repro.experiments.config import TrialSpec
from repro.sim.outcome import Outcome


def trial(seed: int = 0, **overrides) -> TrialSpec:
    base = dict(protocol="flood", adversary="none", n=8, f=0, seed=seed)
    base.update(overrides)
    return TrialSpec(**base)


def wires(results):
    return [json.dumps(r.outcome.to_wire()) for r in results]


# -- chunk auto-tuning -----------------------------------------------------------


def test_chunk_size_auto_tunes_to_waves_per_worker():
    pool = WorkerPool(4)
    # 4 workers * 4 waves = 16 target chunks.
    assert pool._chunk_for(16) == 1
    assert pool._chunk_for(160) == 10
    # ...but never above the hard cap.
    assert pool._chunk_for(100_000) == 64


def test_chunk_size_can_be_pinned():
    pool = WorkerPool(4, chunk_size=7)
    assert pool._chunk_for(10) == 7
    assert pool._chunk_for(100_000) == 7


# -- result semantics ------------------------------------------------------------


def test_inline_pool_preserves_submission_order():
    specs = [trial(seed) for seed in range(5)]
    with WorkerPool(1) as pool:
        results = pool.execute(specs)
    assert [r.spec for r in results] == specs
    assert all(r.ok for r in results)


def test_parallel_chunked_matches_inline():
    specs = [trial(seed) for seed in range(6)]
    with WorkerPool(1) as inline_pool:
        inline = inline_pool.execute(specs)
    with WorkerPool(2, chunk_size=2) as pool:
        chunked = pool.execute(specs)
    assert [r.spec for r in chunked] == specs
    assert wires(chunked) == wires(inline)


def test_error_carries_the_full_worker_traceback():
    specs = [trial(0), trial(0, adversary="no-such-adversary"), trial(1)]
    with WorkerPool(1) as pool:
        ok1, failed, ok2 = pool.execute(specs)
    assert ok1.ok and ok2.ok and not failed.ok
    assert "Traceback (most recent call last)" in failed.error
    assert "no-such-adversary" in failed.error


def test_run_trial_batch_returns_tagged_wire_pairs():
    batch = run_trial_batch([trial(0), trial(0, protocol="no-such-protocol")])
    assert [tag for tag, _ in batch] == ["ok", "error"]
    outcome = Outcome.from_wire(batch[0][1])
    assert outcome.n == 8 and outcome.completed
    assert "Traceback" in batch[1][1]


def test_trial_timeout_fails_the_trial_not_the_batch():
    # A 50-process trial takes milliseconds; a microsecond budget
    # must trip while the spec stays otherwise valid.
    specs = [trial(0), trial(1, n=50, f=15, adversary="ugf")]
    with WorkerPool(1, trial_timeout=1e-6) as pool:
        results = pool.execute(specs)
    assert all(not r.ok for r in results)
    assert all("TrialTimeout" in r.error for r in results)
    with WorkerPool(1, trial_timeout=60.0) as pool:
        assert all(r.ok for r in pool.execute(specs))


# -- broken-pool recovery --------------------------------------------------------


class _BrokenExecutor:
    """Stub executor whose every future dies like an OOM-killed worker."""

    def __init__(self):
        self.submitted = 0

    def submit(self, fn, *args, **kwargs):
        self.submitted += 1
        future = Future()
        future.set_exception(BrokenProcessPool("a worker died abruptly"))
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def test_broken_pool_recovers_chunks_inline():
    specs = [trial(seed) for seed in range(8)]
    with WorkerPool(1) as inline_pool:
        expected = wires(inline_pool.execute(specs))
    pool = WorkerPool(2, chunk_size=2)
    broken = _BrokenExecutor()
    pool._executor = broken
    try:
        results = pool.execute(specs)
    finally:
        pool.close()
    # Every chunk was submitted, failed, and re-ran inline — results
    # are complete, correct, and still in submission order.
    assert broken.submitted == 4
    assert [r.spec for r in results] == specs
    assert wires(results) == expected


def test_sigkilled_worker_mid_chunk_recovers_and_pool_survives():
    # Not a stub: an armed worker.kill plan SIGKILLs the live worker
    # process while it executes seed 1, mid-chunk. The resulting
    # BrokenProcessPool must be recovered inline (where the pid guard
    # disarms the kill) with no result lost, and the pool must come
    # back for the next batch.
    from repro.chaos.plan import FaultPlan, FaultRule
    from repro.obs.registry import MetricsRegistry

    plan = FaultPlan(
        seed=1, rules=(FaultRule(site="worker.kill", rate=1.0, seeds=(1,)),)
    )
    specs = [trial(seed) for seed in range(6)]
    with WorkerPool(1) as inline_pool:
        expected = wires(inline_pool.execute(specs))
    metrics = MetricsRegistry()
    with WorkerPool(2, chunk_size=2, metrics=metrics, fault_plan=plan) as pool:
        results = pool.execute(specs)
        # The kill really happened — recovery ran, results are whole.
        assert metrics.counters["pool.broken_pool_recoveries"] >= 1
        assert [r.spec for r in results] == specs
        assert all(r.ok for r in results)
        # The executor was rebuilt: a second batch (not targeting the
        # killed seed) runs in fresh workers without incident.
        survivors = [trial(seed) for seed in (2, 3, 4, 5)]
        assert all(r.ok for r in pool.execute(survivors))


# -- timeout degradation ---------------------------------------------------------


def test_deadline_off_main_thread_warns_once_and_counts(monkeypatch):
    from repro.obs.registry import MetricsRegistry

    monkeypatch.setattr(pool_mod, "_timeout_warned", False)
    metrics = MetricsRegistry()
    caught: list[warnings.WarningMessage] = []

    def body() -> None:
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            with pool_mod._deadline(0.1, metrics):
                pass
            with pool_mod._deadline(0.1, metrics):
                pass
            caught.extend(seen)

    thread = threading.Thread(target=body)
    thread.start()
    thread.join()
    # Every affected trial is counted; the warning fires exactly once.
    assert metrics.counters["pool.timeout_unavailable"] == 2
    degradations = [
        w for w in caught if issubclass(w.category, RuntimeWarning)
    ]
    assert len(degradations) == 1
    assert "off the main thread" in str(degradations[0].message)


def test_deadline_without_signal_support_warns(monkeypatch):
    from repro.obs.registry import MetricsRegistry

    monkeypatch.setattr(pool_mod, "signal", None)
    monkeypatch.setattr(pool_mod, "_timeout_warned", False)
    metrics = MetricsRegistry()
    with warnings.catch_warnings(record=True) as seen:
        warnings.simplefilter("always")
        with pool_mod._deadline(1.0, metrics):
            pass
    assert metrics.counters["pool.timeout_unavailable"] == 1
    assert any("on this platform" in str(w.message) for w in seen)
