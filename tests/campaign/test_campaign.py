"""Tests for the campaign session: dedup, cache modes, error capture."""

import pytest

from repro.campaign import Campaign, TrialStore, trial_key
from repro.errors import CampaignError
from repro.experiments.config import SweepSpec, TrialSpec
from repro.experiments.runner import run_sweep


SWEEP = SweepSpec(
    protocol="flood", adversary="none", n_values=(6, 10), seeds=(0, 1, 2)
)


def kinds(events):
    return [e.kind for e in events]


def test_same_sweep_twice_executes_zero_trials():
    """The acceptance criterion: re-running a sweep simulates nothing."""
    events = []
    with Campaign(workers=1, progress=events.append) as campaign:
        first = campaign.run_sweep(SWEEP)
        assert kinds(events).count("executed") == SWEEP.n_trials
        events.clear()
        second = campaign.run_sweep(SWEEP)
        assert kinds(events).count("executed") == 0
        assert kinds(events).count("cached") == SWEEP.n_trials
    assert first == second


def test_cached_sweep_matches_legacy_runner():
    with Campaign(workers=1) as campaign:
        cached = campaign.run_sweep(SWEEP)
        again = campaign.run_sweep(SWEEP)
    assert cached == run_sweep(SWEEP, workers=1)
    assert again == cached


def test_overlapping_sweeps_share_trials():
    """Panels sharing a curve (e.g. 3a/3c baselines) simulate it once."""
    events = []
    overlap = SweepSpec(
        protocol="flood", adversary="none", n_values=(10, 14), seeds=(0, 1, 2)
    )
    with Campaign(workers=1, progress=events.append) as campaign:
        campaign.run_sweep(SWEEP)
        events.clear()
        campaign.run_sweep(overlap)
    # N=10 x 3 seeds already ran as part of SWEEP.
    assert kinds(events).count("cached") == 3
    assert kinds(events).count("executed") == 3


def test_duplicate_specs_in_one_batch_execute_once():
    spec = TrialSpec(protocol="flood", adversary="none", n=6, f=1, seed=0)
    events = []
    with Campaign(workers=1, progress=events.append) as campaign:
        results = campaign.run_trials([spec, spec, spec])
    assert kinds(events).count("executed") == 1
    assert kinds(events).count("cached") == 2
    assert all(r.ok for r in results)
    assert results[0].outcome == results[1].outcome == results[2].outcome


def test_no_cache_executes_everything():
    spec = TrialSpec(protocol="flood", adversary="none", n=6, f=1, seed=0)
    events = []
    with Campaign(workers=1, use_cache=False, progress=events.append) as campaign:
        campaign.run_trials([spec, spec])
        campaign.run_trials([spec])
    assert kinds(events) == ["executed"] * 3


def test_fresh_bypasses_reads_but_still_writes(tmp_path):
    spec = TrialSpec(protocol="flood", adversary="none", n=6, f=1, seed=0)
    with Campaign(cache_dir=tmp_path, workers=1) as campaign:
        campaign.run_trials([spec])
    assert len(TrialStore(tmp_path)) == 1

    events = []
    with Campaign(
        cache_dir=tmp_path, workers=1, fresh=True, progress=events.append
    ) as campaign:
        campaign.run_trials([spec])
        # Within the fresh session the memo still dedupes.
        campaign.run_trials([spec])
    assert kinds(events) == ["executed", "cached"]
    # The fresh run re-recorded its result (append-only: two records).
    store = TrialStore(tmp_path)
    assert len(store) == 1  # same key, last write wins
    assert store.path.read_text().count('"key"') == 2


def test_per_trial_error_capture():
    good = TrialSpec(protocol="flood", adversary="none", n=6, f=1, seed=0)
    bad = TrialSpec(
        protocol="flood", adversary="ugf", n=6, f=1, seed=0,
        adversary_kwargs=(("q1", 7.0),),  # outside (0, 1) -> ConfigurationError
    )
    events = []
    with Campaign(workers=1, progress=events.append) as campaign:
        results = campaign.run_trials([good, bad])
    assert results[0].ok
    assert not results[1].ok
    assert "q1" in results[1].error
    assert kinds(events) == ["executed", "failed"]
    failed = [e for e in events if e.kind == "failed"]
    assert failed[0].error == results[1].error


def test_run_sweep_surfaces_failures_as_campaign_error():
    bad_sweep = SweepSpec(
        protocol="flood",
        adversary="ugf",
        n_values=(6,),
        seeds=(0, 1),
        adversary_kwargs=(("q1", 7.0),),
    )
    with Campaign(workers=1) as campaign:
        with pytest.raises(CampaignError, match="q1"):
            campaign.run_sweep(bad_sweep)


def test_run_trial_raises_on_failure():
    bad = TrialSpec(
        protocol="flood", adversary="ugf", n=6, f=1, seed=0,
        adversary_kwargs=(("q1", 7.0),),
    )
    with Campaign(workers=1) as campaign:
        with pytest.raises(CampaignError):
            campaign.run_trial(bad)


def test_parallel_campaign_matches_inline():
    with Campaign(workers=2) as parallel, Campaign(workers=1) as inline:
        assert parallel.run_sweep(SWEEP) == inline.run_sweep(SWEEP)


def test_stats_accumulate_across_batches():
    with Campaign(workers=1) as campaign:
        campaign.run_sweep(SWEEP)
        campaign.run_sweep(SWEEP)
        assert campaign.stats.executed == SWEEP.n_trials
        assert campaign.stats.cached == SWEEP.n_trials
        assert campaign.stats.failed == 0
        assert "executed" in campaign.stats.summary()


def test_progress_counts_are_batch_local():
    events = []
    with Campaign(workers=1, progress=events.append) as campaign:
        campaign.run_sweep(SWEEP)
    assert [e.done for e in events] == list(range(1, SWEEP.n_trials + 1))
    assert all(e.total == SWEEP.n_trials for e in events)
