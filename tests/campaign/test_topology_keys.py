"""Cache-compat differential: the clique is invisible to trial identity.

PR-9 made topology a spec axis. The backward-compatibility contract is
exact: a clique spec — ``topology=None`` or any spelling of the
complete graph — must hash to the *byte-for-byte* pre-topology content
address (key the warm caches were written under), and its outcome wire
must be byte-identical to one produced by a build that never heard of
topology. Non-clique specs get their own keys and carry their spec on
the wire. This file pins all of it, including the manual legacy-hash
recomputation that would catch a fingerprint-shape regression even if
``spec_fingerprint`` and ``trial_key`` drifted together.
"""

import hashlib
import json

from repro.campaign.keys import spec_fingerprint, trial_key
from repro.experiments.config import TrialSpec
from repro.experiments.runner import run_trial
from repro.service.protocol import spec_from_wire, spec_to_wire


def spec(**overrides) -> TrialSpec:
    base = dict(protocol="flood", adversary="ugf", n=10, f=3, seed=0)
    base.update(overrides)
    return TrialSpec(**base)


# -- content addresses ---------------------------------------------------------


def test_clique_spellings_share_the_legacy_key():
    assert (
        trial_key(spec())
        == trial_key(spec(topology=None))
        == trial_key(spec(topology="complete"))
    )


def test_clique_key_is_byte_identical_to_the_pre_topology_hash():
    # Recompute the legacy address by hand: the exact payload shape
    # trial_key hashed before the topology field existed.
    legacy_payload = {
        "version": 1,
        "protocol": "flood",
        "protocol_kwargs": [],
        "adversary": "ugf",
        "adversary_kwargs": [],
        "n": 10,
        "f": 3,
        "seed": 0,
        "max_steps": spec().max_steps,
        "environment": None,
    }
    text = json.dumps(legacy_payload, sort_keys=True, separators=(",", ":"))
    legacy_key = hashlib.sha256(text.encode("utf-8")).hexdigest()
    assert trial_key(spec(topology="complete")) == legacy_key


def test_clique_fingerprint_has_no_topology_field():
    assert "topology" not in spec_fingerprint(spec())
    assert "topology" not in spec_fingerprint(spec(topology="complete"))


def test_non_clique_fingerprint_carries_the_canonical_spec():
    assert spec_fingerprint(spec(topology="ring:2"))["topology"] == "ring:2"
    # Equivalent spellings normalise to one key.
    assert trial_key(spec(topology="ring")) == trial_key(spec(topology="ring:1"))


def test_topology_splits_the_cache_key():
    base = trial_key(spec())
    assert trial_key(spec(topology="ring:1")) != base
    assert trial_key(spec(topology="ring:2")) != trial_key(spec(topology="ring:1"))


# -- outcome wires -------------------------------------------------------------


def test_complete_topology_run_wires_byte_identical_to_none():
    plain = run_trial(spec()).to_wire()
    spelled = run_trial(spec(topology="complete")).to_wire()
    assert json.dumps(plain) == json.dumps(spelled)
    assert len(plain) == 21  # the legacy wire layout, no 22nd element


def test_ring_run_wire_carries_the_topology_element():
    wire = run_trial(spec(topology="ring:2", n=8, f=2)).to_wire()
    assert len(wire) == 22 and wire[21] == "ring:2"


# -- spec serialisation round-trips --------------------------------------------


def test_service_wire_roundtrip_preserves_topology():
    s = spec(topology="ring:2")
    assert spec_from_wire(spec_to_wire(s)) == s
    # Clique specs omit the field entirely (old servers keep working).
    assert "topology" not in spec_to_wire(spec())
    assert spec_from_wire(spec_to_wire(spec())).topology is None


def test_sweep_serialisation_roundtrips_topology():
    from repro.experiments.config import SweepSpec
    from repro.experiments.runner import run_sweep
    from repro.experiments.serialization import dumps, loads

    sweep = SweepSpec(
        protocol="flood",
        adversary="none",
        n_values=(8,),
        seeds=(0, 1),
        topology="ring:2",
    )
    assert all(t.topology == "ring:2" for t in sweep.trials())
    result = run_sweep(sweep)
    again = loads(dumps(result))
    assert again.spec.topology == "ring:2"
