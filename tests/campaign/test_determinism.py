"""Execution-path determinism: every route to an outcome is byte-identical.

The campaign layer offers three ways to satisfy the same specs —
inline execution, chunked parallel dispatch through the worker pool,
and replay from a persisted cache. The paper's experiments assume the
route is irrelevant; these tests pin that down at the strongest
available granularity: the JSON-serialised wire encoding of every
outcome must be identical byte for byte.
"""

import json

from repro.campaign import Campaign
from repro.experiments.config import SweepSpec

SWEEP = SweepSpec(
    protocol="push-pull",
    adversary="ugf",
    n_values=(10, 14),
    seeds=(0, 1, 2),
)


def wire_bytes(results):
    return [
        json.dumps(r.outcome.to_wire(), separators=(",", ":"))
        for r in results
    ]


def test_inline_parallel_and_resumed_runs_are_byte_identical(tmp_path):
    specs = list(SWEEP.trials())

    with Campaign(workers=1) as campaign:
        inline = campaign.run_trials(specs)
    assert all(r.ok for r in inline)

    with Campaign(workers=2, cache_dir=tmp_path) as campaign:
        # Tiny chunks force multi-chunk dispatch even on this small grid.
        campaign.pool.chunk_size = 2
        parallel = campaign.run_trials(specs)
    assert all(r.ok for r in parallel)
    assert not any(r.cached for r in parallel)

    with Campaign(workers=2, cache_dir=tmp_path) as campaign:
        resumed = campaign.run_trials(specs)
    assert all(r.cached for r in resumed)

    assert (
        wire_bytes(inline) == wire_bytes(parallel) == wire_bytes(resumed)
    )
