"""Resumability: an interrupted run restarts and skips completed trials."""

from repro.campaign import Campaign
from repro.experiments.config import SweepSpec
from repro.experiments.figure3 import run_figure3_panel
from repro.experiments.runner import run_sweep


SWEEP = SweepSpec(
    protocol="flood", adversary="none", n_values=(6, 8, 10), seeds=(0, 1, 2, 3)
)


def test_resume_executes_only_missing_trials(tmp_path):
    # "Interrupt" a sweep by persisting only a prefix of its trials.
    trials = list(SWEEP.trials())
    completed = trials[:7]
    with Campaign(cache_dir=tmp_path, workers=1) as first_session:
        first_session.run_trials(completed)

    events = []
    with Campaign(cache_dir=tmp_path, workers=1, progress=events.append) as resumed:
        result = resumed.run_sweep(SWEEP)

    executed = [e for e in events if e.kind == "executed"]
    cached = [e for e in events if e.kind == "cached"]
    assert len(executed) == len(trials) - len(completed)
    assert len(cached) == len(completed)
    # The resumed trials are exactly the ones the first session missed.
    assert {e.spec for e in executed} == set(trials[7:])
    # And the stitched result is identical to an uninterrupted run.
    assert result == run_sweep(SWEEP, workers=1)


def test_resume_across_experiment_entry_points(tmp_path):
    """A figure panel interrupted after one curve resumes the other two."""
    from repro.experiments.figure3 import figure3_sweeps

    sweeps = figure3_sweeps("3a", n_values=(8,), seeds=(0, 1))
    with Campaign(cache_dir=tmp_path, workers=1) as partial:
        partial.run_sweep(sweeps["no-adversary"])

    events = []
    with Campaign(cache_dir=tmp_path, workers=1, progress=events.append) as resumed:
        run_figure3_panel("3a", n_values=(8,), seeds=(0, 1), campaign=resumed)

    executed = sum(e.kind == "executed" for e in events)
    cached = sum(e.kind == "cached" for e in events)
    assert cached == sweeps["no-adversary"].n_trials
    assert executed == sum(s.n_trials for s in sweeps.values()) - cached


def test_interrupted_write_resumes_cleanly(tmp_path):
    """A half-written final record does not poison the resume."""
    trials = list(SWEEP.trials())
    with Campaign(cache_dir=tmp_path, workers=1) as first_session:
        first_session.run_trials(trials[:5])
        path = first_session.store.path

    # Chop the final record in half, as a kill -9 mid-append would.
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 3])

    events = []
    with Campaign(cache_dir=tmp_path, workers=1, progress=events.append) as resumed:
        result = resumed.run_sweep(SWEEP)
    assert sum(e.kind == "executed" for e in events) == len(trials) - 4
    assert sum(e.kind == "cached" for e in events) == 4
    assert result == run_sweep(SWEEP, workers=1)
