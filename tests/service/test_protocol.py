"""Unit tests for the campaign-service wire protocol (docs/SERVICE.md)."""

import json

import pytest

from repro.campaign.keys import trial_key
from repro.errors import ConfigurationError
from repro.experiments.config import TrialSpec
from repro.service.protocol import (
    PROTO_VERSION,
    ServiceAddress,
    decode_frame,
    encode_frame,
    parse_service_url,
    spec_from_wire,
    spec_to_wire,
)


# -- service urls --------------------------------------------------------------


def test_parse_tcp_url():
    addr = parse_service_url("tcp://cache.lab:7341")
    assert addr == ServiceAddress(scheme="tcp", host="cache.lab", port=7341)
    assert str(addr) == "tcp://cache.lab:7341"


def test_bare_host_port_is_tcp_shorthand():
    addr = parse_service_url("127.0.0.1:7341")
    assert addr.scheme == "tcp"
    assert addr.host == "127.0.0.1"
    assert addr.port == 7341


def test_parse_unix_url():
    addr = parse_service_url("unix:///run/repro/cache.sock")
    assert addr == ServiceAddress(scheme="unix", path="/run/repro/cache.sock")
    assert str(addr) == "unix:///run/repro/cache.sock"


def test_parsed_url_round_trips_through_str():
    for url in ("tcp://h:1", "unix:///tmp/x.sock"):
        assert str(parse_service_url(url)) == url


@pytest.mark.parametrize(
    "bad",
    [
        "unix://",  # no path
        "http://h:80",  # unsupported scheme
        "tcp://h:notaport",
        "tcp://h:0",  # out of range
        "tcp://h:70000",
        "justahost",  # no port at all
        "tcp://:7341",  # no host
    ],
)
def test_bad_urls_raise_configuration_error(bad):
    with pytest.raises(ConfigurationError):
        parse_service_url(bad)


# -- spec wires ----------------------------------------------------------------


def trial(**overrides) -> TrialSpec:
    base = dict(protocol="flood", adversary="none", n=8, f=2, seed=3)
    base.update(overrides)
    return TrialSpec(**base)


def test_spec_wire_round_trip_minimal():
    spec = trial()
    wire = spec_to_wire(spec)
    json.dumps(wire)  # JSON-native by contract
    rebuilt = spec_from_wire(wire)
    assert rebuilt == spec
    assert trial_key(rebuilt) == trial_key(spec)


def test_spec_wire_round_trip_full():
    spec = trial(
        protocol_kwargs=(("fanout", 3),),
        adversary_kwargs=(("rate", 0.5),),
        environment="lossy",
        sanitize="warn",
        max_steps=1234,
    )
    rebuilt = spec_from_wire(json.loads(json.dumps(spec_to_wire(spec))))
    assert rebuilt == spec
    assert trial_key(rebuilt) == trial_key(spec)


@pytest.mark.parametrize(
    "bad",
    [
        "not an object",
        {"protocol": "flood"},  # missing required fields
        {"protocol": "flood", "adversary": "none", "n": "x", "f": 0, "seed": 0},
    ],
)
def test_malformed_spec_wire_raises(bad):
    with pytest.raises(ConfigurationError):
        spec_from_wire(bad)


# -- frames --------------------------------------------------------------------


def test_frame_round_trip():
    frame = {"v": PROTO_VERSION, "op": "ping"}
    line = encode_frame(frame)
    assert line.endswith(b"\n")
    assert b"\n" not in line[:-1]
    assert decode_frame(line) == frame


@pytest.mark.parametrize("bad", [b"not json\n", b"[1,2,3]\n", b"\xff\xfe\n"])
def test_undecodable_frames_raise(bad):
    with pytest.raises(ConfigurationError):
        decode_frame(bad)
