"""End-to-end tests for the campaign-service daemon and client.

The differential contract (ISSUE 7 / docs/SERVICE.md): an outcome
fetched through the service — cold miss, warm hit, or deduplicated
onto another client's in-flight computation — is **byte-identical** at
the ``json.dumps(outcome.to_wire())`` level to one computed by an
inline :class:`Campaign`. The dedup test gates the daemon's executor
with events so two clients provably race, and the compute-call ledger
proves each unique content address was computed exactly once.
"""

import json
import threading

import pytest

from repro.campaign import Campaign
from repro.experiments.config import TrialSpec
from repro.obs.registry import MetricsRegistry
from repro.service import (
    ServiceCampaign,
    ServiceClient,
    ServiceError,
    TrialService,
)
from repro.service.server import ServiceThread


def trial(seed: int = 0, **overrides) -> TrialSpec:
    base = dict(protocol="flood", adversary="none", n=8, f=2, seed=seed)
    base.update(overrides)
    return TrialSpec(**base)


def wires(results) -> list[str]:
    """The byte-identity projection of a result/reply list."""
    out = []
    for r in results:
        if hasattr(r, "outcome"):  # TrialResult
            out.append(json.dumps(r.outcome.to_wire()))
        else:  # TrialReply
            out.append(json.dumps(r.wire))
    return out


@pytest.fixture
def daemon(tmp_path):
    """A live daemon on a unix socket, sharded store, inline workers."""
    campaign = Campaign(
        cache_dir=tmp_path / "shared",
        workers=0,
        store_backend="sharded",
        metrics=MetricsRegistry(),
    )
    host = ServiceThread(campaign, unix_path=str(tmp_path / "svc.sock"))
    with host:
        yield host


# -- basic ops -----------------------------------------------------------------


def test_hello_ping_stats(daemon):
    with ServiceClient(daemon.url) as client:
        hello = client.hello()
        assert hello["server"] == "repro-ugf-service"
        assert client.ping()
        stats = client.stats()
        assert stats["counters"]["connections"] >= 1
        assert stats["inflight"] == 0


# -- the differential battery --------------------------------------------------


def test_cold_and_warm_outcomes_are_byte_identical_to_inline(
    daemon, tmp_path
):
    specs = [trial(s) for s in range(4)]
    with Campaign(cache_dir=tmp_path / "inline", workers=0) as inline:
        expected = wires(inline.run_trials(specs))

    with ServiceClient(daemon.url) as client:
        cold = client.submit(specs)
        assert [r.status for r in cold] == ["computed"] * 4
        assert wires(cold) == expected
        # Same socket, same specs: now the daemon's store answers.
        warm = client.submit(specs)
        assert [r.status for r in warm] == ["hit"] * 4
        assert wires(warm) == expected

    # A fresh connection (new client, same daemon) still hits.
    with ServiceClient(daemon.url) as client:
        assert [r.status for r in client.submit(specs)] == ["hit"] * 4

    counters = daemon.service.counters
    assert counters["computed"] == 4
    assert counters["hits"] == 8


def test_service_campaign_is_a_drop_in_campaign(daemon, tmp_path):
    specs = [trial(s) for s in range(3)]
    with Campaign(cache_dir=tmp_path / "inline", workers=0) as inline:
        expected = wires(inline.run_trials(specs))

    metrics = MetricsRegistry()
    with ServiceCampaign(
        daemon.url, cache_dir=tmp_path / "local", workers=0, metrics=metrics
    ) as campaign:
        results = campaign.run_trials(specs)
        assert all(r.ok for r in results)
        assert [r.cached for r in results] == [False] * 3
        assert wires(results) == expected
        # The in-session memo answers repeats without re-crossing the
        # wire: cached=True, and the daemon saw no second request.
        again = campaign.run_trials(specs)
        assert [r.cached for r in again] == [True] * 3
        assert wires(again) == expected
        assert metrics.counters["campaign.memo_hits"] == 3
        assert daemon.service.counters["requests"] == 1

    # Telemetry flagged the remote trials.
    telemetry = (tmp_path / "local" / "telemetry.jsonl").read_text()
    assert '"via": "service"' in telemetry or '"via":"service"' in telemetry


def test_failed_trials_come_back_as_failed_results(daemon, tmp_path):
    bad = trial(0, protocol="no-such-protocol")
    with ServiceClient(daemon.url) as client:
        (reply,) = client.submit([bad])
    assert reply.status == "failed"
    assert reply.wire is None
    assert reply.error

    with ServiceCampaign(
        daemon.url, cache_dir=tmp_path / "local", workers=0
    ) as campaign:
        (result,) = campaign.run_trials([bad])
    assert not result.ok
    assert result.error


# -- in-flight dedup -----------------------------------------------------------


def test_concurrent_clients_dedup_onto_one_computation(tmp_path):
    campaign = Campaign(
        cache_dir=tmp_path / "shared", workers=0, store_backend="sharded"
    )
    started = threading.Event()
    release = threading.Event()
    compute_calls: list[list[str]] = []
    real_run_trials = campaign.run_trials

    def gated(specs, **kwargs):
        # Runs on the daemon's single executor thread: record what was
        # actually computed, and hold wave 1 open until both clients'
        # claims are in.
        compute_calls.append([s.protocol + str(s.seed) for s in specs])
        started.set()
        assert release.wait(timeout=60)
        return real_run_trials(specs, **kwargs)

    campaign.run_trials = gated
    specs = [trial(s) for s in range(3)]
    replies: dict[str, list] = {}

    def run_client(name: str, batch) -> None:
        with ServiceClient(
            f"unix://{tmp_path / 'svc.sock'}", timeout=120
        ) as client:
            replies[name] = client.submit(batch)

    with ServiceThread(campaign, unix_path=str(tmp_path / "svc.sock")) as host:
        first = threading.Thread(target=run_client, args=("a", specs[:2]))
        first.start()
        assert started.wait(timeout=60)  # wave 1 (s0, s1) is executing

        # Client B arrives *while* A's trials are in flight, asking for
        # the same two plus a fresh one.
        second = threading.Thread(target=run_client, args=("b", specs))
        second.start()
        deadline = threading.Event()
        for _ in range(600):  # b's claims land on the loop thread
            if host.service.counters["dedup_inflight"] == 2:
                break
            deadline.wait(0.05)
        assert host.service.counters["dedup_inflight"] == 2
        release.set()
        first.join(timeout=120)
        second.join(timeout=120)
        counters = dict(host.service.counters)

    assert [r.status for r in replies["a"]] == ["computed", "computed"]
    assert [r.status for r in replies["b"]] == ["dedup", "dedup", "computed"]
    # The dedup guarantee: three unique content addresses, three
    # computed trials total — s0 and s1 ran exactly once even though
    # two clients asked for them concurrently.
    assert sorted(s for call in compute_calls for s in call) == [
        "flood0",
        "flood1",
        "flood2",
    ]
    assert counters["computed"] == 3
    assert counters["dedup_inflight"] == 2
    # Deduplicated replies carry byte-identical wires to the computed ones.
    assert wires(replies["b"][:2]) == wires(replies["a"])


# -- failure posture -----------------------------------------------------------


def test_service_campaign_falls_back_to_local_execution(tmp_path):
    metrics = MetricsRegistry()
    campaign = ServiceCampaign(
        f"unix://{tmp_path / 'nobody-home.sock'}",
        cache_dir=tmp_path / "local",
        workers=0,
        metrics=metrics,
    )
    specs = [trial(s) for s in range(2)]
    with pytest.warns(RuntimeWarning, match="falling back"):
        results = campaign.run_trials(specs)
    assert all(r.ok for r in results)
    assert campaign._remote_down
    assert metrics.counters["service.fallbacks"] == 1
    # The reconnect loop tried the full policy before giving up.
    assert metrics.counters["service.retries"] == campaign.retry_policy.max_retries
    # Later batches probe for recovery (the daemon is still gone) and
    # run locally without further warnings.
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = campaign.run_trials(specs)
    assert all(r.cached for r in again)  # served by the local memo/store
    assert metrics.counters["service.probes"] == 1
    assert metrics.counters["service.probe_failures"] == 1
    assert "service.reconnects" not in metrics.counters
    campaign.close()


def test_malformed_frames_get_error_frames_not_disconnects(daemon):
    client = ServiceClient(daemon.url)
    client.connect()
    try:
        # Garbage JSON: the server answers with an error frame...
        client._sock.sendall(b"this is not json\n")
        frame = client._read_frame()
        assert frame["op"] == "error"
        # ...and the connection survives for well-formed traffic.
        assert client.ping()
        # Unknown op and version mismatch are refused the same way.
        client._send_frame({"v": 1, "op": "frobnicate"})
        assert client._read_frame()["op"] == "error"
        client._send_frame({"v": 999, "op": "ping"})
        frame = client._read_frame()
        assert frame["op"] == "error" and "version" in frame["error"]
        assert client.ping()
    finally:
        client.close()


def test_submit_without_trials_list_is_an_error_frame(daemon):
    client = ServiceClient(daemon.url)
    client.connect()
    try:
        client._send_frame({"v": 1, "op": "submit", "id": 1, "trials": "nope"})
        assert client._read_frame()["op"] == "error"
    finally:
        client.close()


def test_bad_spec_in_batch_fails_only_that_trial(daemon):
    good = trial(0)
    with ServiceClient(daemon.url) as client:
        client._send_frame(
            {
                "v": 1,
                "op": "submit",
                "id": 7,
                "trials": [
                    {"protocol": "flood"},  # malformed: missing fields
                    __import__(
                        "repro.service.protocol", fromlist=["spec_to_wire"]
                    ).spec_to_wire(good),
                ],
            }
        )
        seen = {}
        while True:
            frame = client._read_frame()
            if frame["op"] == "done":
                counts = frame["counts"]
                break
            assert frame["op"] == "outcome"
            seen[frame["i"]] = frame
    assert seen[0]["status"] == "failed" and "spec" in seen[0]["error"]
    assert seen[1]["status"] in ("computed", "hit")
    assert counts["failed"] == 1


def test_client_reports_closed_daemon_as_service_error(tmp_path):
    campaign = Campaign(
        cache_dir=tmp_path / "shared", workers=0, store_backend="sharded"
    )
    host = ServiceThread(campaign, unix_path=str(tmp_path / "svc.sock"))
    host.start()
    client = ServiceClient(host.url, timeout=30)
    assert client.connect().ping()
    host.stop()
    with pytest.raises(ServiceError):
        client.submit([trial(0)])
    client.close()
