"""The service chaos battery (ISSUE 10 / docs/SERVICE.md "Failure model").

The headline contract: under **every** shipped service fault plan
(:func:`repro.chaos.shipped_service_plans` — refused connections,
mid-stream resets, torn frames, stalled replies, a killed daemon), a
``--cache-url`` sweep completes and its outcome wires are
byte-identical at the ``json.dumps(outcome.to_wire())`` level to a
fault-free local run. Each plan is exercised from both ends of the
transport: injected on the :class:`ServiceClient` (the wire died on
us) and on the daemon's connection handler (the daemon died on the
wire), with counter/telemetry assertions proving the fault actually
fired and was actually handled — no vacuous passes.
"""

import json

import pytest

from repro.campaign import Campaign
from repro.chaos import RetryPolicy, shipped_service_plans
from repro.experiments.config import TrialSpec
from repro.obs.registry import MetricsRegistry
from repro.service import ServiceCampaign
from repro.service.server import ServiceThread


def trial(seed: int = 0, **overrides) -> TrialSpec:
    base = dict(protocol="flood", adversary="none", n=8, f=2, seed=seed)
    base.update(overrides)
    return TrialSpec(**base)


SPECS = [trial(s) for s in range(4)]

#: Zero-backoff policy so the battery retries instantly.
FAST_RETRIES = RetryPolicy(max_retries=2, base_backoff=0.0)


def wire_image(results) -> list[str]:
    return [json.dumps(r.outcome.to_wire()) for r in results]


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """The fault-free local truth every faulted sweep must reproduce."""
    cache = tmp_path_factory.mktemp("baseline-cache")
    with Campaign(cache_dir=cache, workers=0) as campaign:
        return wire_image(campaign.run_trials(SPECS))


# -- client-side injection -----------------------------------------------------

#: daemon-kill has no client-side interpretation (a client cannot kill
#: the daemon); its end-to-end story is the server-side case below.
_CLIENT_SIDE = ["conn-refuse", "conn-drop", "frame-tear", "slow-peer"]


@pytest.mark.parametrize("plan_name", _CLIENT_SIDE)
def test_client_side_fault_converges_byte_identical(plan_name, tmp_path, baseline):
    """The transport dies on the client once; the retry loop resubmits
    (idempotently — the daemon dedups by content address) and the sweep
    finishes byte-identical to the fault-free run, never falling back."""
    plan = shipped_service_plans()[plan_name]
    daemon_campaign = Campaign(
        cache_dir=tmp_path / "shared", workers=0, store_backend="sharded"
    )
    metrics = MetricsRegistry()
    with ServiceThread(
        daemon_campaign, unix_path=str(tmp_path / "svc.sock")
    ) as host:
        with ServiceCampaign(
            host.url,
            cache_dir=tmp_path / "local",
            workers=0,
            metrics=metrics,
            fault_plan=plan,
            retry_policy=FAST_RETRIES,
            timeout=30.0,
        ) as campaign:
            results = campaign.run_trials(SPECS)
            assert all(r.ok for r in results)
            assert wire_image(results) == baseline
        server_counters = dict(host.service.counters)

    # The fault fired (anti-vacuous) and the retry absorbed it: no
    # fallback, and the daemon — not the local path — computed trials.
    assert metrics.counters["service.injected_faults"] >= 1
    assert metrics.counters["service.retries"] >= 1
    assert "service.fallbacks" not in metrics.counters
    assert server_counters["computed"] == len(SPECS)

    # Every retry and injected fault is auditable in telemetry.
    telemetry = (tmp_path / "local" / "telemetry.jsonl").read_text()
    assert '"injected_fault"' in telemetry
    assert '"retry"' in telemetry


# -- server-side injection -----------------------------------------------------

#: Per plan: the read deadline the client runs with. slow-peer stalls
#: the reply 2s, so a sub-second deadline forces the timeout path.
_SERVER_SIDE = {
    "conn-refuse": 30.0,
    "conn-drop": 30.0,
    "frame-tear": 30.0,
    "slow-peer": 0.75,
    "daemon-kill": 30.0,
}


@pytest.mark.parametrize("plan_name", sorted(_SERVER_SIDE))
def test_server_side_fault_converges_byte_identical(plan_name, tmp_path, baseline):
    """The daemon's side of the transport misbehaves once; the sweep
    still completes byte-identical. Recoverable faults are absorbed by
    the retry loop; a killed daemon ends in a clean local fallback."""
    plan = shipped_service_plans()[plan_name]
    daemon_campaign = Campaign(
        cache_dir=tmp_path / "shared",
        workers=0,
        store_backend="sharded",
        fault_plan=plan,
    )
    metrics = MetricsRegistry()
    with ServiceThread(
        daemon_campaign, unix_path=str(tmp_path / "svc.sock")
    ) as host:
        with ServiceCampaign(
            host.url,
            cache_dir=tmp_path / "local",
            workers=0,
            metrics=metrics,
            retry_policy=FAST_RETRIES,
            timeout=_SERVER_SIDE[plan_name],
        ) as campaign:
            if plan_name == "daemon-kill":
                with pytest.warns(RuntimeWarning, match="falling back"):
                    results = campaign.run_trials(SPECS)
            else:
                results = campaign.run_trials(SPECS)
            assert all(r.ok for r in results)
            assert wire_image(results) == baseline
        server_counters = dict(host.service.counters)

    assert server_counters["injected_faults"] >= 1
    if plan_name == "daemon-kill":
        # Unrecoverable on the remote path: the policy was exhausted,
        # the batch fell back locally, and the sweep still completed.
        assert metrics.counters["service.fallbacks"] == 1
        assert metrics.counters["service.retries"] == FAST_RETRIES.max_retries
    else:
        # Recoverable: the resubmission reached the daemon, so nothing
        # fell back and every trial was served remotely — as a fresh
        # computation or, after a mid-stream abort, as a store hit on
        # the idempotent resubmit.
        assert metrics.counters["service.retries"] >= 1
        assert "service.fallbacks" not in metrics.counters
        assert server_counters["computed"] + server_counters["hits"] >= len(SPECS)


def test_faults_clear_and_later_batches_run_remote(tmp_path, baseline):
    """attempts=1 plans are transient by construction: after the
    faulted batch converges, the next batch crosses the wire cleanly —
    no retries, answered from the daemon's store."""
    plan = shipped_service_plans()["conn-drop"]
    daemon_campaign = Campaign(
        cache_dir=tmp_path / "shared", workers=0, store_backend="sharded",
        fault_plan=plan,
    )
    metrics = MetricsRegistry()
    with ServiceThread(
        daemon_campaign, unix_path=str(tmp_path / "svc.sock")
    ) as host:
        with ServiceCampaign(
            host.url,
            cache_dir=tmp_path / "local",
            workers=0,
            metrics=metrics,
            retry_policy=FAST_RETRIES,
            timeout=30.0,
        ) as campaign:
            assert wire_image(campaign.run_trials(SPECS)) == baseline
            retries_after_first = metrics.counters["service.retries"]
            # Fresh specs, same session: the transport stays healthy.
            more = [trial(s) for s in range(4, 6)]
            second = campaign.run_trials(more)
            assert all(r.ok for r in second)
        served = (
            host.service.counters["computed"] + host.service.counters["hits"]
        )
        assert served >= len(SPECS) + len(more)
    assert metrics.counters["service.retries"] == retries_after_first


# -- the CLI path --------------------------------------------------------------


def test_cli_sweep_through_faulted_daemon_completes(tmp_path, monkeypatch):
    """A real ``--cache-url`` sweep (the CLI entry point, finite
    ``--service-timeout``) completes against a daemon whose transport
    drops mid-stream."""
    from repro.cli import main

    plan = shipped_service_plans()["conn-drop"]
    daemon_campaign = Campaign(
        cache_dir=tmp_path / "shared", workers=0, store_backend="sharded",
        fault_plan=plan,
    )
    with ServiceThread(
        daemon_campaign, unix_path=str(tmp_path / "svc.sock")
    ) as host:
        code = main(
            [
                "sweep",
                "--protocol", "flood",
                "--adversary", "none",
                "--n", "8",
                "--seeds", "2",
                "--cache-dir", str(tmp_path / "local"),
                "--cache-url", host.url,
                "--service-timeout", "30",
            ]
        )
        assert code == 0
        assert host.service.counters["injected_faults"] >= 1
        assert host.service.counters["computed"] >= 1
