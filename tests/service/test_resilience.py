"""Resilience tests for the service boundary (ISSUE 10 satellites).

Three families:

- **Protocol garbage** — a peer that speaks broken NDJSON (oversized
  frames, truncated UTF-8, torn lines, busy/error frames with missing
  or garbage fields) always surfaces as a *typed* :class:`ServiceError`
  subclass on the client; never a hang, never a raw ``OSError`` or
  ``JSONDecodeError``.
- **Daemon admission + lifecycle** — bounded pending queue and drain
  both answer with ``busy`` frames the retry loop understands; idle
  connections are reaped; a graceful drain finishes in-flight waves
  before exit; a submitter that vanishes mid-wait is counted
  (``aborted_streams``) without poisoning the computation other
  clients deduplicated onto.
- **Recovery** — a campaign that fell back to local execution probes
  the daemon on later batches and resumes remote the moment it is
  back.
"""

import contextlib
import socket
import threading
import time

import pytest

from repro.campaign import Campaign
from repro.chaos import RetryPolicy
from repro.experiments.config import TrialSpec
from repro.obs.registry import MetricsRegistry
from repro.service import ServiceCampaign, ServiceClient, ServiceError
from repro.service.client import (
    ServiceBusy,
    ServiceProtocolError,
    ServiceTimeout,
)
from repro.service.protocol import MAX_FRAME_BYTES, PROTO_VERSION, spec_to_wire
from repro.service.server import ServiceThread


def trial(seed: int = 0, **overrides) -> TrialSpec:
    base = dict(protocol="flood", adversary="none", n=8, f=2, seed=seed)
    base.update(overrides)
    return TrialSpec(**base)


NO_BACKOFF = RetryPolicy(max_retries=2, base_backoff=0.0)


# -- protocol garbage ----------------------------------------------------------


@contextlib.contextmanager
def misbehaving_daemon(tmp_path, payload: bytes):
    """A unix-socket peer that answers any request with *payload* and
    then closes — the shape of a corrupted or hostile daemon."""
    path = str(tmp_path / "fake.sock")
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    server.bind(path)
    server.listen(1)
    server.settimeout(30)

    def serve() -> None:
        with contextlib.suppress(OSError):
            conn, _ = server.accept()
            conn.settimeout(30)
            with contextlib.suppress(OSError):
                conn.recv(1 << 16)  # the request frame; content ignored
                if payload:
                    conn.sendall(payload)
            conn.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    try:
        yield f"unix://{path}"
    finally:
        server.close()
        thread.join(timeout=10)


GARBAGE = {
    "oversized-frame": (
        b"x" * (MAX_FRAME_BYTES + 64) + b"\n",
        ServiceProtocolError,
        "exceeds",
    ),
    "torn-frame": (
        b'{"v": 1, "op": "po',  # no newline, then the peer dies
        ServiceProtocolError,
        "torn NDJSON",
    ),
    "truncated-utf8": (
        b'{"op": "pong\xe2\x82"}\n',  # a multibyte sequence cut short
        ServiceProtocolError,
        None,
    ),
    "non-object-json": (b"[1, 2, 3]\n", ServiceProtocolError, None),
    "not-json": (b"HTTP/1.1 200 OK\n", ServiceProtocolError, None),
    "immediate-eof": (b"", ServiceError, "closed before reply"),
    "error-missing-fields": (
        b'{"v": 1, "op": "error"}\n',
        ServiceError,
        "unspecified error",
    ),
}


@pytest.mark.parametrize("case", sorted(GARBAGE))
def test_protocol_garbage_surfaces_as_typed_errors(case, tmp_path):
    payload, expected_type, match = GARBAGE[case]
    with misbehaving_daemon(tmp_path, payload) as url:
        client = ServiceClient(url, timeout=10.0)
        with pytest.raises(expected_type, match=match):
            client.ping()
        client.close()


@pytest.mark.parametrize(
    "frame",
    [
        b'{"v": 1, "op": "busy"}\n',  # no hint at all
        b'{"v": 1, "op": "busy", "retry_after": "soon", "reason": 7}\n',
        b'{"v": 1, "op": "busy", "retry_after": true}\n',  # bool is not a delay
        b'{"v": 1, "op": "busy", "retry_after": -4}\n',
    ],
)
def test_busy_frames_with_garbage_fields_stay_typed(frame, tmp_path):
    """A daemon that rejects admission but mangles the hint fields
    still produces a ServiceBusy with a sane (absent) Retry-After."""
    with misbehaving_daemon(tmp_path, frame) as url:
        client = ServiceClient(url, timeout=10.0)
        with pytest.raises(ServiceBusy) as excinfo:
            client.submit([trial()])
        assert excinfo.value.retry_after is None
        client.close()


def test_stalled_peer_hits_the_read_deadline(tmp_path):
    """A peer that accepts and never replies is a ServiceTimeout, not a
    hang — the wedged-daemon case --service-timeout exists for."""
    with misbehaving_daemon(tmp_path, b"") as url:
        # An empty payload means the fake peer holds the socket open
        # only as long as accept+recv; give it something slower: a
        # client deadline far shorter than the server's 30s recv.
        client = ServiceClient(url, timeout=0.3)
        started = time.monotonic()
        with pytest.raises((ServiceTimeout, ServiceError)):
            client.ping()
        assert time.monotonic() - started < 10
        client.close()


# -- vanished submitters (satellite a) -----------------------------------------


def test_vanished_submitter_is_counted_and_dedup_clients_still_answered(tmp_path):
    """Client A submits and disconnects mid-wait; its stream is
    cancelled and *counted* (``aborted_streams``), while client B —
    deduplicated onto the same in-flight computation — still receives
    the outcome. The regression this pins: those cancellations used to
    vanish silently."""
    campaign = Campaign(
        cache_dir=tmp_path / "shared",
        workers=0,
        store_backend="sharded",
        metrics=MetricsRegistry(),
    )
    started = threading.Event()
    release = threading.Event()
    real_run_trials = campaign.run_trials

    def gated(specs, **kwargs):
        started.set()
        assert release.wait(timeout=60)
        return real_run_trials(specs, **kwargs)

    campaign.run_trials = gated
    spec = trial(0)
    replies: dict[str, list] = {}

    with ServiceThread(campaign, unix_path=str(tmp_path / "svc.sock")) as host:
        ghost = ServiceClient(host.url).connect()
        ghost._send_frame(
            {
                "v": PROTO_VERSION,
                "op": "submit",
                "id": 1,
                "trials": [spec_to_wire(spec)],
            }
        )
        assert started.wait(timeout=60)  # the daemon is computing

        def run_b() -> None:
            with ServiceClient(host.url, timeout=120) as client:
                replies["b"] = client.submit([spec])

        b = threading.Thread(target=run_b)
        b.start()
        for _ in range(600):  # b's claim dedups onto the ghost's future
            if host.service.counters["dedup_inflight"] == 1:
                break
            time.sleep(0.05)
        assert host.service.counters["dedup_inflight"] == 1

        ghost.close()  # the submitter vanishes mid-wait
        for _ in range(600):
            if host.service.counters["aborted_streams"] >= 1:
                break
            time.sleep(0.05)
        release.set()
        b.join(timeout=120)
        counters = dict(host.service.counters)

    assert counters["aborted_streams"] == 1
    assert campaign.metrics.counters["service.aborted_streams"] == 1
    (reply,) = replies["b"]
    assert reply.status == "dedup"
    assert reply.wire is not None  # B got the real outcome


# -- admission control ---------------------------------------------------------


def test_full_pending_queue_answers_busy_with_retry_hint(tmp_path):
    campaign = Campaign(
        cache_dir=tmp_path / "shared", workers=0, store_backend="sharded"
    )
    with ServiceThread(
        campaign,
        unix_path=str(tmp_path / "svc.sock"),
        max_pending=0,
        retry_after=1.5,
    ) as host:
        with ServiceClient(host.url, timeout=30) as client:
            with pytest.raises(ServiceBusy) as excinfo:
                client.submit([trial()])
        assert excinfo.value.retry_after == 1.5
        assert "queue full" in str(excinfo.value)
        assert host.service.counters["busy_rejections"] == 1


def test_busy_rejection_is_retried_and_absorbed(tmp_path):
    """The client's retry loop honours the busy hint: once the daemon
    stops refusing admission, the resubmit goes through — no fallback,
    no error."""
    campaign = Campaign(
        cache_dir=tmp_path / "shared", workers=0, store_backend="sharded"
    )
    metrics = MetricsRegistry()
    with ServiceThread(campaign, unix_path=str(tmp_path / "svc.sock")) as host:
        host.service._draining = True  # refuse admission...
        waits: list[float] = []

        def sleep(seconds: float) -> None:
            waits.append(seconds)
            host.service._draining = False  # ...until the first backoff

        client = ServiceClient(
            host.url,
            timeout=30,
            retry_policy=RetryPolicy(max_retries=2, base_backoff=0.0),
            metrics=metrics,
            sleep=sleep,
        )
        replies = client.submit([trial()])
        client.close()
        assert [r.status for r in replies] == ["computed"]
        assert host.service.counters["busy_rejections"] == 1
    assert metrics.counters["service.busy"] == 1
    assert metrics.counters["service.retries"] == 1
    # The wait respected the server's Retry-After hint.
    assert waits and waits[0] >= host.service.retry_after


# -- idle connections ----------------------------------------------------------


def test_idle_connections_are_reaped(tmp_path):
    campaign = Campaign(
        cache_dir=tmp_path / "shared", workers=0, store_backend="sharded"
    )
    with ServiceThread(
        campaign, unix_path=str(tmp_path / "svc.sock"), idle_timeout=0.2
    ) as host:
        client = ServiceClient(host.url, timeout=30).connect()
        assert client.ping()  # active connections are served
        for _ in range(600):
            if host.service.counters["idle_closed"] >= 1:
                break
            time.sleep(0.05)
        assert host.service.counters["idle_closed"] == 1
        # The reaped socket surfaces as a clean typed error client-side.
        with pytest.raises(ServiceError):
            client.ping()
        client.close()
        # An idle close is not an abort: no stream was in flight.
        assert host.service.counters["aborted_streams"] == 0


# -- graceful drain ------------------------------------------------------------


def test_graceful_drain_finishes_in_flight_work(tmp_path):
    """The SIGTERM path, minus the signal: during a drain the daemon
    stops admitting (busy frames to surviving connections), finishes
    the in-flight wave, and the draining submitter gets real outcomes."""
    campaign = Campaign(
        cache_dir=tmp_path / "shared",
        workers=0,
        store_backend="sharded",
        metrics=MetricsRegistry(),
    )
    started = threading.Event()
    release = threading.Event()
    real_run_trials = campaign.run_trials

    def gated(specs, **kwargs):
        started.set()
        assert release.wait(timeout=60)
        return real_run_trials(specs, **kwargs)

    campaign.run_trials = gated
    replies: dict[str, list] = {}

    host = ServiceThread(campaign, unix_path=str(tmp_path / "svc.sock")).start()
    try:
        bystander = ServiceClient(host.url, timeout=30).connect()
        assert bystander.ping()

        def run_a() -> None:
            with ServiceClient(host.url, timeout=120) as client:
                replies["a"] = client.submit([trial(0), trial(1)])

        a = threading.Thread(target=run_a)
        a.start()
        assert started.wait(timeout=60)  # wave 1 is executing

        drainer = threading.Thread(target=host.stop, kwargs={"drain": True})
        drainer.start()
        for _ in range(600):
            if host.service.counters["drains"] == 1:
                break
            time.sleep(0.05)
        assert host.service.counters["drains"] == 1

        # A surviving connection is refused admission while draining.
        with pytest.raises(ServiceBusy, match="draining"):
            bystander.submit([trial(2)])
        bystander.close()

        release.set()  # let the in-flight wave finish
        a.join(timeout=120)
        drainer.join(timeout=120)
    finally:
        release.set()
        host.stop()

    assert [r.status for r in replies["a"]] == ["computed", "computed"]
    assert all(r.wire is not None for r in replies["a"])
    metrics = campaign.metrics.counters
    assert metrics["service.drain_started"] == 1
    assert metrics["service.drain_finished"] == 1
    assert "service.drain_timeouts" not in metrics


# -- recovery ------------------------------------------------------------------


def test_fallen_back_campaign_reconnects_when_the_daemon_returns(tmp_path):
    """Fallback is per-batch, not per-session: once the daemon is back,
    the probe notices and remote execution resumes."""
    sock = tmp_path / "svc.sock"
    metrics = MetricsRegistry()
    campaign = ServiceCampaign(
        f"unix://{sock}",
        cache_dir=tmp_path / "local",
        workers=0,
        metrics=metrics,
        retry_policy=NO_BACKOFF,
    )
    # Nobody home: the first batch retries, falls back, runs locally.
    with pytest.warns(RuntimeWarning, match="falling back"):
        first = campaign.run_trials([trial(0)])
    assert all(r.ok for r in first)
    assert campaign._remote_down

    daemon_campaign = Campaign(
        cache_dir=tmp_path / "shared", workers=0, store_backend="sharded"
    )
    with ServiceThread(daemon_campaign, unix_path=str(sock)) as host:
        second = campaign.run_trials([trial(1)])
        assert all(r.ok for r in second)
        # The probe reconnected and the batch ran remotely.
        assert host.service.counters["computed"] == 1
    campaign.close()

    assert not campaign._remote_down
    assert metrics.counters["service.probes"] == 1
    assert metrics.counters["service.reconnects"] == 1
    assert "service.probe_failures" not in metrics.counters
