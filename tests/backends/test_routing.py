"""Campaign routing: deterministic, silently falling back, and counted."""

import json

import pytest

from repro.backends.registry import execute_trial, get_backend, select_backend
from repro.campaign import Campaign
from repro.errors import SimulationError
from repro.experiments.config import TrialSpec
from repro.obs.registry import MetricsRegistry

BATCHABLE = [
    TrialSpec(protocol="flood", adversary="str-1", n=8, f=3, seed=s)
    for s in range(4)
]
SCALAR_ONLY = [
    TrialSpec(protocol="hedged-push-pull", adversary="none", n=8, f=0, seed=s)
    for s in range(3)
]


def counter(metrics: MetricsRegistry, name: str) -> int:
    return metrics.counters.get(name, 0)


@pytest.fixture(autouse=True)
def _default_sanitizer_mode(monkeypatch):
    """Under $REPRO_SANITIZE=strict every spec is batch-ineligible and
    routing collapses to all-scalar (pinned by test_eligibility); these
    tests exercise the mixed batch/scalar paths, so they run with the
    sanitizer at its default."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)


def test_auto_routes_by_eligibility():
    metrics = MetricsRegistry()
    with Campaign(workers=1, metrics=metrics) as campaign:
        results = campaign.run_trials(BATCHABLE + SCALAR_ONLY)
    assert all(r.ok for r in results)
    assert [r.backend for r in results] == ["batch"] * 4 + ["scalar"] * 3
    assert counter(metrics, "campaign.backend_batch") == 4
    assert counter(metrics, "campaign.backend_scalar") == 3
    # The ineligible specs fell back silently — no failures, counted.
    assert counter(metrics, "campaign.backend_fallbacks") == 3


def test_eligibility_verdicts_are_memoized_per_cell():
    """A sweep's cache misses share a handful of cells; only the first
    spec of a cell derives a verdict, the rest are counted memo hits."""
    from repro.backends.batch import clear_eligibility_memo

    clear_eligibility_memo()
    metrics = MetricsRegistry()
    specs = [
        TrialSpec(protocol="push", adversary="ugf", n=6, f=2, seed=s)
        for s in range(10)
    ]
    with Campaign(workers=1, metrics=metrics, use_cache=False) as campaign:
        results = campaign.run_trials(specs)
    assert all(r.ok for r in results)
    assert counter(metrics, "backends.eligibility_memo_hits") >= len(specs) - 1


def test_routing_is_deterministic():
    decisions = []
    for _ in range(3):
        with Campaign(workers=1, use_cache=False) as campaign:
            results = campaign.run_trials(BATCHABLE + SCALAR_ONLY)
        decisions.append([r.backend for r in results])
    assert decisions[0] == decisions[1] == decisions[2]


def test_routing_never_changes_outcomes():
    with Campaign(workers=1, backend="auto") as auto_campaign:
        auto = auto_campaign.run_trials(BATCHABLE + SCALAR_ONLY)
    with Campaign(workers=1, backend="scalar") as scalar_campaign:
        forced = scalar_campaign.run_trials(BATCHABLE + SCALAR_ONLY)
    for a, s in zip(auto, forced):
        assert json.dumps(a.outcome.to_wire()) == json.dumps(s.outcome.to_wire())


def test_forced_scalar_uses_no_batch():
    metrics = MetricsRegistry()
    with Campaign(workers=1, metrics=metrics, backend="scalar") as campaign:
        results = campaign.run_trials(BATCHABLE)
    assert [r.backend for r in results] == ["scalar"] * len(BATCHABLE)
    assert counter(metrics, "campaign.backend_batch") == 0
    assert counter(metrics, "campaign.backend_fallbacks") == 0


def test_forced_batch_fails_ineligible_trials():
    with Campaign(workers=1, backend="batch") as campaign:
        results = campaign.run_trials(BATCHABLE + SCALAR_ONLY)
    for r in results[: len(BATCHABLE)]:
        assert r.ok and r.backend == "batch"
    for r in results[len(BATCHABLE):]:
        assert not r.ok
        assert "ineligible" in r.error


def test_unknown_backend_mode_rejected():
    from repro.errors import CampaignError

    with pytest.raises(CampaignError, match="unknown backend mode"):
        Campaign(workers=1, backend="gpu")


def test_armed_fault_plan_pins_scalar():
    """Chaos faults inject at per-trial sites the batch kernel lacks, so
    an armed plan must route everything through the oracle."""
    from repro.chaos import FaultPlan

    with Campaign(
        workers=1, fault_plan=FaultPlan(seed=7, rules=())
    ) as campaign:
        results = campaign.run_trials(BATCHABLE)
    assert all(r.ok for r in results)
    assert [r.backend for r in results] == ["scalar"] * len(BATCHABLE)


def test_cached_results_have_no_backend():
    with Campaign(workers=1) as campaign:
        first = campaign.run_trials(BATCHABLE)
        second = campaign.run_trials(BATCHABLE)
    assert [r.backend for r in first] == ["batch"] * len(BATCHABLE)
    assert all(r.cached and r.backend is None for r in second)


def test_telemetry_records_backend(tmp_path):
    with Campaign(
        workers=1, cache_dir=tmp_path, metrics=MetricsRegistry()
    ) as campaign:
        campaign.run_trials(BATCHABLE + SCALAR_ONLY)
    records = [
        json.loads(line)
        for line in (tmp_path / "telemetry.jsonl").read_text().splitlines()
    ]
    trials = [r for r in records if r.get("kind") == "trial"]
    assert sorted(
        r["backend"] for r in trials if r["status"] == "executed"
    ) == ["batch"] * 4 + ["scalar"] * 3


def test_batch_results_persist_and_replay(tmp_path):
    with Campaign(workers=1, cache_dir=tmp_path) as campaign:
        first = campaign.run_trials(BATCHABLE)
    with Campaign(workers=1, cache_dir=tmp_path) as campaign:
        second = campaign.run_trials(BATCHABLE)
    assert all(r.cached for r in second)
    for a, b in zip(first, second):
        assert json.dumps(a.outcome.to_wire()) == json.dumps(b.outcome.to_wire())


def test_execute_trial_modes_agree():
    spec = BATCHABLE[0]
    scalar_wire = json.dumps(execute_trial(spec, mode="scalar").to_wire())
    for mode in ("auto", "batch"):
        assert json.dumps(execute_trial(spec, mode=mode).to_wire()) == scalar_wire
    with pytest.raises(SimulationError, match="unknown backend mode"):
        execute_trial(spec, mode="gpu")


def test_select_backend_resolution():
    fast_spec, slow_spec = BATCHABLE[0], SCALAR_ONLY[0]
    backend, verdict = select_backend(fast_spec, "auto")
    assert backend.name == "batch" and verdict
    backend, verdict = select_backend(slow_spec, "auto")
    assert backend.name == "scalar" and not verdict
    assert select_backend(slow_spec, "scalar")[0].name == "scalar"
    assert select_backend(slow_spec, "batch")[0].name == "batch"
    assert get_backend("scalar").name == "scalar"
    with pytest.raises(SimulationError, match="unknown backend"):
        get_backend("gpu")
