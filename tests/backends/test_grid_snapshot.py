"""The eligibility matrix is a committed artifact, not an emergent one.

``repro-ugf backends --grid`` prints which protocol×adversary cells
route to the batch backend and why the rest fall back. That matrix is
the routing contract of a release: a kernel refactor that silently
drops a cell back to scalar (or accidentally claims one it cannot
replay) must fail CI, not surface as a throughput regression weeks
later. The committed snapshot pins it; regenerate deliberately with::

    REPRO_SANITIZE= PYTHONPATH=src python -m repro.cli backends --grid \
        > tests/backends/snapshots/backends_grid.txt
"""

from pathlib import Path

import pytest

from repro.backends.batch import (
    clear_eligibility_memo,
    eligibility_grid,
    format_grid,
    topology_grid,
)

SNAPSHOT = Path(__file__).parent / "snapshots" / "backends_grid.txt"


@pytest.fixture(autouse=True)
def _default_environment(monkeypatch):
    # The snapshot is the default-environment matrix; a pinned
    # $REPRO_SANITIZE would legitimately turn every cell scalar.
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    clear_eligibility_memo()


def test_grid_matches_committed_snapshot():
    assert format_grid(eligibility_grid(), topology_grid()) == SNAPSHOT.read_text()


def test_cli_grid_prints_the_snapshot(capsys):
    from repro.cli import main

    assert main(["backends", "--grid"]) == 0
    assert capsys.readouterr().out == SNAPSHOT.read_text()


def test_grid_covers_the_full_registries():
    from repro.core.registry import available_adversaries
    from repro.protocols.registry import available_protocols

    rows = eligibility_grid()
    protocols = {p for p, _, _ in rows}
    adversaries = {a for _, a, _ in rows}
    assert protocols == set(available_protocols())
    concrete = {a for a in available_adversaries() if "<" not in a}
    assert adversaries == concrete | {"str-2.1.0", "str-2.1.1"}


def test_topology_grid_declines_every_non_clique_family():
    rows = dict(topology_grid())
    assert rows.pop("complete") is None
    assert rows  # at least one non-clique probe per family
    for topology, reason in rows.items():
        assert reason is not None, topology
        assert topology in reason
        assert "clique" in reason
