"""Seeded draw-order property test: the replay plane is draw-exact.

Byte-identical outcomes could in principle be reached with *different*
draw sequences that happen to produce the same aggregate counters; the
wire-level battery would not notice. This test removes that loophole:
for 50 random (spec, seed) pairs per vectorized randomized protocol,
every (trial, process) generator in the batch engine's replay plane
must issue exactly the method calls — same kind, same bound, same
values, same per-process order — that the scalar engine's protocol
generators issue, recorded by proxying ``sim.protocol.rngs``.
"""

import random

import pytest

from repro.backends.batch.engine import run_cell
from repro.backends.batch.rng import RecordingGenerator
from repro.experiments.config import TrialSpec

PROTOCOLS = ("push", "pull", "push-pull", "ears", "sears")
ADVERSARIES = (
    "none",
    "str-1",
    "oblivious",
    "omission",
    "ugf",
    "str-2.1.0",
    "str-2.1.1",
)

PAIRS_PER_PROTOCOL = 50


def scalar_draw_log(spec: TrialSpec) -> list[list[tuple]]:
    """Run the reference engine with recording proxies on the protocol's
    per-process generators; return the per-process draw logs."""
    from repro.core.registry import make_adversary
    from repro.protocols.registry import make_protocol
    from repro.sim.engine import Simulator

    protocol = make_protocol(spec.protocol)
    adversary = make_adversary(spec.adversary)
    sim = Simulator(
        protocol,
        adversary,
        n=spec.n,
        f=spec.f,
        seed=spec.seed,
        max_steps=spec.max_steps,
    )
    logs: list[list[tuple]] = [[] for _ in range(spec.n)]
    protocol.rngs = [
        RecordingGenerator(gen, log) for gen, log in zip(protocol.rngs, logs)
    ]
    sim.run()
    return logs


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_replay_plane_matches_scalar_draw_order(protocol):
    picker = random.Random(f"draw-order:{protocol}")
    for _ in range(PAIRS_PER_PROTOCOL):
        n = picker.randint(2, 12)
        spec = TrialSpec(
            protocol=protocol,
            adversary=picker.choice(ADVERSARIES),
            n=n,
            f=picker.randint(0, n - 1),
            seed=picker.randrange(2**31),
        )
        expected = scalar_draw_log(spec)
        _, plane = run_cell(spec, [spec.seed], record_draws=True)
        assert plane.log[0] == expected, spec
