"""Eligibility is cheap, deterministic, and carries its reasons."""

import pytest

from repro.backends import (
    BatchBackend,
    Eligibility,
    ScalarBackend,
    why_ineligible,
)
from repro.experiments.config import TrialSpec

BATCH = BatchBackend()

ELIGIBLE = TrialSpec(protocol="flood", adversary="str-1", n=10, f=3, seed=0)


def test_scalar_accepts_everything():
    scalar = ScalarBackend()
    for spec in (
        ELIGIBLE,
        TrialSpec(protocol="push-pull", adversary="ugf", n=10, f=3, seed=0),
        TrialSpec(protocol="ears", adversary="str-2.1.1", n=10, f=3, seed=0),
    ):
        verdict = scalar.eligible(spec)
        assert verdict and verdict.reason is None


def test_eligibility_truthiness():
    assert Eligibility(True)
    assert not Eligibility(False, "because")


@pytest.mark.parametrize(
    "spec,needle",
    [
        (
            TrialSpec(protocol="hedged-push-pull", adversary="none", n=8, f=2, seed=0),
            "protocol 'hedged-push-pull'",
        ),
        (
            TrialSpec(protocol="coordinator", adversary="ugf", n=8, f=2, seed=0),
            "protocol 'coordinator'",
        ),
        (
            TrialSpec(protocol="flood", adversary="informed", n=8, f=2, seed=0),
            "adversary 'informed'",
        ),
        (
            TrialSpec(protocol="flood", adversary="str-3.1", n=8, f=2, seed=0),
            "adversary 'str-3.1'",
        ),
        (
            TrialSpec(
                protocol="flood", adversary="none", n=8, f=2, seed=0,
                environment="jitter",
            ),
            "environment 'jitter'",
        ),
        (
            TrialSpec(
                protocol="flood", adversary="none", n=8, f=2, seed=0,
                sanitize="strict",
            ),
            "sanitizer 'strict'",
        ),
        (
            TrialSpec(
                protocol="round-robin", adversary="none", n=8, f=2, seed=0,
                protocol_kwargs=(("x", 1),),
            ),
            "protocol kwargs",
        ),
        (
            TrialSpec(
                protocol="flood", adversary="oblivious", n=8, f=2, seed=0,
                adversary_kwargs=(("horizon", 9),),
            ),
            "adversary kwargs",
        ),
    ],
)
def test_rejections_carry_their_reason(spec, needle):
    verdict = BATCH.eligible(spec)
    assert not verdict
    assert needle in verdict.reason
    assert why_ineligible(spec) == verdict.reason


def test_eligible_cells_have_no_reason(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    for protocol in ("flood", "round-robin"):
        for adversary in ("none", "str-1", "oblivious", "omission"):
            spec = TrialSpec(protocol=protocol, adversary=adversary, n=8, f=2, seed=0)
            verdict = BATCH.eligible(spec)
            assert verdict and verdict.reason is None
    homogeneous = TrialSpec(
        protocol="flood", adversary="none", n=8, f=2, seed=0,
        environment="homogeneous",
    )
    assert BATCH.eligible(homogeneous)


def test_sanitizer_environment_pins_scalar(monkeypatch):
    """$REPRO_SANITIZE reaches trials whose spec leaves sanitize=None,
    so a sanitizing environment must make every cell fall back — the
    monitors only exist in the scalar engine."""
    monkeypatch.setenv("REPRO_SANITIZE", "strict")
    verdict = BATCH.eligible(ELIGIBLE)
    assert not verdict and "sanitizer" in verdict.reason
    monkeypatch.setenv("REPRO_SANITIZE", "off")
    assert BATCH.eligible(ELIGIBLE)


def test_eligibility_is_deterministic(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    specs = [
        TrialSpec(protocol=p, adversary=a, n=6, f=2, seed=s)
        for p in ("flood", "push")
        for a in ("none", "ugf")
        for s in range(3)
    ]
    first = [bool(BATCH.eligible(s)) for s in specs]
    for _ in range(3):
        assert [bool(BATCH.eligible(s)) for s in specs] == first
