"""The batch↔scalar differential battery (docs/BACKENDS.md).

The equivalence law is byte-level: on every eligible cell of the full
protocol×adversary grid, ``json.dumps(outcome.to_wire())`` from the
batch backend must equal the scalar oracle's, for several N and seeds.
Anything weaker ("same medians", "same gather verdict") would let the
vectorized engine drift on tie-breaking, counter accounting, or
truncation edges — exactly the bugs a rewrite introduces.
"""

import json

import pytest

from repro.backends import BatchBackend, ScalarBackend
from repro.core.registry import available_adversaries
from repro.experiments.config import TrialSpec
from repro.protocols.registry import available_protocols

SCALAR = ScalarBackend()
BATCH = BatchBackend()

# The full evaluation grid: every registered protocol against every
# concrete adversary (the str-2.<k>.<l> family contributes the two
# paper variants), 90 pairs total.
ADVERSARIES = [a for a in available_adversaries() if "<" not in a] + [
    "str-2.1.0",
    "str-2.1.1",
]
GRID = [(p, a) for p in available_protocols() for a in ADVERSARIES]

SIZES = [(2, 1), (5, 2), (9, 4), (16, 7)]
SEEDS = list(range(4))


def wire(outcome) -> str:
    return json.dumps(outcome.to_wire())


def test_grid_is_the_paper_grid():
    assert len(GRID) == 90


@pytest.mark.parametrize("protocol,adversary", GRID)
def test_eligible_cells_are_wire_identical(protocol, adversary):
    """Every eligible (protocol, adversary) cell, several N, byte-equal."""
    probe = TrialSpec(protocol=protocol, adversary=adversary, n=5, f=2, seed=0)
    if not BATCH.eligible(probe):
        pytest.skip(f"cell not batch-eligible: {BATCH.eligible(probe).reason}")
    specs = [
        TrialSpec(protocol=protocol, adversary=adversary, n=n, f=f, seed=seed)
        for n, f in SIZES
        for seed in SEEDS
    ]
    batch_outcomes = BATCH.run_batch(specs)
    for spec, batch_outcome in zip(specs, batch_outcomes):
        assert wire(batch_outcome) == wire(SCALAR.run_one(spec)), spec


def test_some_cells_are_eligible():
    """The battery must not silently become vacuous: unless the
    environment pins a sanitizer (the CI sanitize job), the grid has
    batchable cells."""
    import os

    if os.environ.get("REPRO_SANITIZE"):
        pytest.skip("sanitizer pinned by environment: all cells scalar")
    eligible = [
        (p, a)
        for p, a in GRID
        if BATCH.eligible(TrialSpec(protocol=p, adversary=a, n=5, f=2, seed=0))
    ]
    # 7 vectorized protocols x (8 concrete adversaries + 2 str-2 probes
    # - 3 non-replayable) — the replay-plane engine took the grid from
    # 8 cells to the 49 of PR 8.
    assert len(eligible) >= 40


@pytest.mark.parametrize("max_steps", [1, 2, 3, 5, 64, 70])
def test_truncation_boundaries_are_wire_identical(max_steps):
    """max_steps truncation is the subtlest path: t_end freezes at the
    last *visited* step and completed stays False."""
    for protocol in ("flood", "round-robin", "push", "push-pull", "sears"):
        for adversary in ("none", "oblivious", "ugf"):
            spec = TrialSpec(
                protocol=protocol,
                adversary=adversary,
                n=9,
                f=4,
                seed=1,
                max_steps=max_steps,
            )
            if not BATCH.eligible(spec):
                pytest.skip("cell not batch-eligible here")
            assert wire(BATCH.run_batch([spec])[0]) == wire(SCALAR.run_one(spec))


def test_batch_is_pure_slicing():
    """A batch of one equals the corresponding slice of a mixed batch —
    no cross-trial state."""
    specs = [
        TrialSpec(protocol=p, adversary=a, n=n, f=f, seed=seed)
        for p in ("flood", "round-robin")
        for a in ("none", "str-1")
        for n, f in ((5, 2), (11, 5))
        for seed in (0, 3)
    ]
    if not all(BATCH.eligible(s) for s in specs):
        pytest.skip("cells not batch-eligible here")
    mixed = BATCH.run_batch(specs)
    for spec, from_mixed in zip(specs, mixed):
        assert wire(BATCH.run_batch([spec])[0]) == wire(from_mixed)


def test_word_boundary_n():
    """N crossing a packed-word boundary (64→65) keeps bit layouts right."""
    for adversary in ("none", "str-1"):
        spec = TrialSpec(
            protocol="round-robin", adversary=adversary, n=65, f=30, seed=2
        )
        if not BATCH.eligible(spec):
            pytest.skip("cell not batch-eligible here")
        assert wire(BATCH.run_batch([spec])[0]) == wire(SCALAR.run_one(spec))


def test_batch_validates_like_the_engine():
    """Parameter validation mirrors Simulator.__init__ (same error type)."""
    from repro.errors import ConfigurationError

    for bad in (
        TrialSpec(protocol="flood", adversary="none", n=1, f=0, seed=0),
        TrialSpec(protocol="flood", adversary="none", n=4, f=4, seed=0),
        TrialSpec(protocol="flood", adversary="none", n=4, f=1, seed=0, max_steps=0),
    ):
        if not BATCH.eligible(bad):
            pytest.skip("cells not batch-eligible here")
        with pytest.raises(ConfigurationError):
            BATCH.run_batch([bad])
        with pytest.raises(ConfigurationError):
            SCALAR.run_one(bad)


def test_run_batch_rejects_ineligible_specs():
    from repro.errors import SimulationError

    spec = TrialSpec(protocol="hedged-push-pull", adversary="ugf", n=5, f=1, seed=0)
    with pytest.raises(SimulationError, match="not batch-eligible"):
        BATCH.run_batch([spec])
