"""Tests for the protocol registry."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.base import GossipProtocol
from repro.protocols.registry import (
    available_protocols,
    make_protocol,
    register_protocol,
)


def test_all_paper_protocols_available():
    names = available_protocols()
    for expected in ("push-pull", "ears", "sears", "round-robin", "flood", "push"):
        assert expected in names


def test_make_returns_fresh_instances():
    a = make_protocol("push-pull")
    b = make_protocol("push-pull")
    assert a is not b
    assert isinstance(a, GossipProtocol)


def test_make_forwards_kwargs():
    sears = make_protocol("sears", c=2.0, eps=0.25)
    assert sears.c == 2.0
    assert sears.eps == 0.25


def test_unknown_name_raises_with_suggestions():
    with pytest.raises(ConfigurationError, match="push-pull"):
        make_protocol("nope")


def test_register_custom_protocol():
    class Custom(GossipProtocol):
        name = "custom-test-proto"

        def _allocate(self):
            pass

        def on_local_step(self, ctx):
            return True

        def knowledge_of(self, rho):
            raise NotImplementedError

    register_protocol("custom-test-proto", Custom)
    try:
        assert isinstance(make_protocol("custom-test-proto"), Custom)
        with pytest.raises(ConfigurationError):
            register_protocol("custom-test-proto", Custom)  # no shadowing
    finally:
        from repro.protocols import registry

        registry._FACTORIES.pop("custom-test-proto", None)


def test_cannot_shadow_builtin():
    with pytest.raises(ConfigurationError):
        register_protocol("ears", lambda: None)
