"""Tests for the hedged (adaptive) Push-Pull variant."""

import pytest

from repro.core.adversary import NullAdversary
from repro.core.registry import make_adversary
from repro.core.strategies import CrashGroupStrategy
from repro.errors import ConfigurationError
from repro.protocols.adaptive import HedgedPushPull
from repro.protocols.push_pull import PushPull
from repro.sim.engine import simulate


def test_validation():
    with pytest.raises(ConfigurationError):
        HedgedPushPull(escalate_every=0)
    with pytest.raises(ConfigurationError):
        HedgedPushPull(max_width=0)
    with pytest.raises(ConfigurationError):
        HedgedPushPull(rtt_allowance=-1)


def test_benign_runs_match_push_pull():
    # With the RTT allowance the hedge stays silent in benign runs —
    # same coins, same per-process streams, so identical outcomes.
    for seed in range(3):
        plain = simulate(PushPull(), NullAdversary(), n=40, f=12, seed=seed).outcome
        hedged = simulate(
            HedgedPushPull(), NullAdversary(), n=40, f=12, seed=seed
        ).outcome
        assert hedged.message_complexity() == plain.message_complexity()
        assert hedged.t_end == plain.t_end


def test_gathers_and_completes_under_every_strategy():
    for adversary in ("str-1", "str-2.1.0", "str-2.1.1", "ugf"):
        outcome = simulate(
            HedgedPushPull(), make_adversary(adversary), n=30, f=9, seed=1
        ).outcome
        assert outcome.completed, adversary
        assert outcome.rumor_gathering_ok, adversary


def test_hedging_recovers_time_under_crash_attack():
    n, f = 100, 30
    plain_t, hedged_t = [], []
    for seed in range(5):
        plain = simulate(PushPull(), CrashGroupStrategy(), n=n, f=f, seed=seed).outcome
        hedged = simulate(
            HedgedPushPull(), CrashGroupStrategy(), n=n, f=f, seed=seed
        ).outcome
        plain_t.append(plain.time_complexity())
        hedged_t.append(hedged.time_complexity())
    plain_t.sort()
    hedged_t.sort()
    assert hedged_t[len(hedged_t) // 2] < plain_t[len(plain_t) // 2]


def test_delay_attack_message_damage_persists():
    # The axis hedging cannot buy back: Strategy 2.1.1 still extracts
    # a growing message tax relative to baseline.
    n, f = 60, 18
    base = simulate(HedgedPushPull(), NullAdversary(), n=n, f=f, seed=2).outcome
    hit = simulate(
        HedgedPushPull(), make_adversary("str-2.1.1"), n=n, f=f, seed=2
    ).outcome
    assert hit.message_complexity() > 1.3 * base.message_complexity()


def test_width_escalates_with_backlog():
    import numpy as np

    proto = HedgedPushPull(rtt_allowance=2, escalate_every=1, max_width=5)
    proto.bind(10, 3, np.random.default_rng(0))
    unknown = np.ones(10, dtype=bool)
    # No outstanding pulls: width 1.
    assert proto._pull_width(0, unknown) == 1
    # Mark 6 outstanding pulls (pulled and still unknown).
    for target in range(1, 7):
        proto._pulled[0, target] = True
    assert proto._pull_width(0, unknown) == 5  # 1 + (6-2)/1, capped at 5