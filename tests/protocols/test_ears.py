"""Behavioural tests for the EARS protocol."""

import pytest

from repro.core.adversary import NullAdversary
from repro.core.strategies import CrashGroupStrategy, IsolateSurvivorStrategy
from repro.errors import ConfigurationError
from repro.protocols.ears import Ears, ears_timeout
from repro.sim.engine import simulate


def test_timeout_formula():
    # ceil(N/(N-F) * ln N)
    assert ears_timeout(50, 15) == 6
    assert ears_timeout(100, 30) == 7
    assert ears_timeout(10, 0) == 3


def test_timeout_rejects_bad_f():
    with pytest.raises(ConfigurationError):
        ears_timeout(10, 10)
    with pytest.raises(ConfigurationError):
        ears_timeout(10, -1)


def test_baseline_gathers_and_completes():
    outcome = simulate(Ears(), NullAdversary(), n=30, f=9, seed=0).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok


def test_baseline_time_includes_patience_but_stays_sublinear():
    outcome = simulate(Ears(), NullAdversary(), n=100, f=30, seed=1).outcome
    assert outcome.time_complexity() < 100 / 2


def test_one_message_per_step_while_awake():
    proto = Ears()
    report = simulate(proto, NullAdversary(), n=20, f=6, seed=2, record_events=True)
    # EARS sends exactly one message per local step while not complete;
    # per-process sends equal per-process actions minus silent steps.
    for rho in range(20):
        actions = report.runtimes[rho].action_count
        assert report.outcome.sent[rho] <= actions


def test_crash_at_start_leaves_known_universe_satisfiable():
    # Strategy 1 crashes C before it ever speaks: the I-condition over
    # the known universe completes without the fallback, keeping time
    # logarithmic (the paper's Fig. 3b shows Str. 1 is mild for EARS).
    n, f = 60, 18
    baseline = simulate(Ears(), NullAdversary(), n=n, f=f, seed=3).outcome
    attacked = simulate(Ears(), CrashGroupStrategy(), n=n, f=f, seed=3).outcome
    assert attacked.completed and attacked.rumor_gathering_ok
    assert attacked.time_complexity() < 3 * baseline.time_complexity()


def test_isolation_forces_linear_time():
    # Strategy 2.1.0: the survivor's wall gives T ~ Theta(F).
    n, f = 60, 18
    baseline = simulate(Ears(), NullAdversary(), n=n, f=f, seed=4).outcome
    attacked = simulate(Ears(), IsolateSurvivorStrategy(1), n=n, f=f, seed=4).outcome
    assert attacked.completed and attacked.rumor_gathering_ok
    assert attacked.time_complexity() > 2 * baseline.time_complexity()
    # T_end must at least span the survivor's crash wall:
    # (budget after group crashes) x tau local steps, tau = F.
    assert attacked.t_end > (f // 2) * f / 2


def test_patience_property_exposed():
    proto = Ears()
    simulate(proto, NullAdversary(), n=30, f=9, seed=0)
    assert proto.patience == ears_timeout(30, 9)


def test_relation_accessor():
    proto = Ears()
    simulate(proto, NullAdversary(), n=10, f=0, seed=0)
    rel = proto.relation_of(0)
    assert rel.shape == (10, 10)
    assert rel.all()  # complete dissemination: everyone knows everyone knows


def test_deterministic_under_seed():
    a = simulate(Ears(), NullAdversary(), n=25, f=7, seed=5).outcome
    b = simulate(Ears(), NullAdversary(), n=25, f=7, seed=5).outcome
    assert a.message_complexity() == b.message_complexity()
    assert a.t_end == b.t_end


def test_no_completion_before_first_send():
    # The degenerate N=2 case: patience is 1 step and the known
    # universe is initially just oneself — without the first-send
    # guard a process would "complete" without ever gossiping.
    outcome = simulate(Ears(), NullAdversary(), n=2, f=0, seed=0).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok
    assert (outcome.sent >= 1).all()


def test_survivor_persistence_scales_with_n():
    # The give-up fallback is ~N newsless local steps: the isolated
    # survivor of Strategy 2.k.0 keeps knocking roughly that long, so
    # doubling N (at fixed F) stretches the raw wall.
    small = simulate(
        Ears(), IsolateSurvivorStrategy(1, tau=4, group=(0, 1, 2)), n=20, f=6, seed=1
    ).outcome
    large = simulate(
        Ears(), IsolateSurvivorStrategy(1, tau=4, group=(0, 1, 2)), n=60, f=6, seed=1
    ).outcome
    assert large.t_end > small.t_end
