"""Unit and property tests for the packed bitset primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.protocols.bitset import PackedBits, PackedMatrix, packed_size


# ---------------------------------------------------------------- helpers


def random_mask(rng, n):
    return rng.random(n) < 0.4


# ---------------------------------------------------------------- PackedBits


def test_packed_size():
    assert packed_size(1) == 1
    assert packed_size(8) == 1
    assert packed_size(9) == 2
    assert packed_size(64) == 8
    assert packed_size(65) == 9


def test_empty_bitset():
    bits = PackedBits(13)
    assert bits.count() == 0
    assert not bits.is_full()
    assert bits.to_indices().size == 0


def test_set_get_single_bits():
    bits = PackedBits(20)
    for i in (0, 7, 8, 13, 19):
        assert not bits.get(i)
        bits.set(i)
        assert bits.get(i)
    assert bits.count() == 5
    assert bits.to_indices().tolist() == [0, 7, 8, 13, 19]


def test_from_bool_round_trip():
    mask = np.array([True, False, True, True, False, False, True, False, True])
    bits = PackedBits.from_bool(mask)
    assert np.array_equal(bits.to_bool(), mask)
    assert bits.count() == 5


def test_from_indices():
    bits = PackedBits.from_indices(10, [2, 5, 9])
    assert bits.to_indices().tolist() == [2, 5, 9]


def test_or_inplace_is_union():
    a = PackedBits.from_indices(16, [1, 3])
    b = PackedBits.from_indices(16, [3, 8, 15])
    a.or_inplace(b)
    assert a.to_indices().tolist() == [1, 3, 8, 15]
    # b unchanged
    assert b.to_indices().tolist() == [3, 8, 15]


def test_contains_all():
    a = PackedBits.from_indices(16, [1, 3, 8])
    b = PackedBits.from_indices(16, [1, 8])
    assert a.contains_all(b)
    assert not b.contains_all(a)
    assert a.contains_all(a)


def test_is_full():
    bits = PackedBits(9)
    for i in range(9):
        bits.set(i)
    assert bits.is_full()
    # The padding bits beyond nbits must not be required.
    assert bits.count() == 9


def test_copy_is_independent():
    a = PackedBits.from_indices(8, [1])
    b = a.copy()
    b.set(2)
    assert not a.get(2)
    assert b.get(2)


def test_equals():
    a = PackedBits.from_indices(12, [0, 11])
    b = PackedBits.from_indices(12, [0, 11])
    assert a.equals(b)
    b.set(5)
    assert not a.equals(b)


def test_rejects_bad_sizes():
    with pytest.raises(ConfigurationError):
        PackedBits(0)
    with pytest.raises(ConfigurationError):
        PackedBits(8, words=np.zeros(2, dtype=np.uint8))
    with pytest.raises(ConfigurationError):
        PackedBits(8, words=np.zeros(1, dtype=np.int64))


@settings(max_examples=80)
@given(
    n=st.integers(1, 200),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_pack_unpack_round_trip(n, seed):
    rng = np.random.default_rng(seed)
    mask = random_mask(rng, n)
    assert np.array_equal(PackedBits.from_bool(mask).to_bool(), mask)


@settings(max_examples=80)
@given(
    n=st.integers(1, 150),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_or_matches_numpy_or(n, seed):
    rng = np.random.default_rng(seed)
    m1, m2 = random_mask(rng, n), random_mask(rng, n)
    a, b = PackedBits.from_bool(m1), PackedBits.from_bool(m2)
    a.or_inplace(b)
    assert np.array_equal(a.to_bool(), m1 | m2)


@settings(max_examples=80)
@given(
    n=st.integers(1, 150),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_contains_all_matches_subset(n, seed):
    rng = np.random.default_rng(seed)
    m1, m2 = random_mask(rng, n), random_mask(rng, n)
    a, b = PackedBits.from_bool(m1), PackedBits.from_bool(m2)
    assert a.contains_all(b) == bool((~m2 | m1).all())


@settings(max_examples=50)
@given(
    n=st.integers(1, 150),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_count_matches_sum(n, seed):
    rng = np.random.default_rng(seed)
    mask = random_mask(rng, n)
    assert PackedBits.from_bool(mask).count() == int(mask.sum())


# ---------------------------------------------------------------- PackedMatrix


def test_matrix_set_get():
    mat = PackedMatrix(4, 11)
    mat.set(2, 10)
    assert mat.get(2, 10)
    assert not mat.get(2, 9)
    assert not mat.get(1, 10)


def test_matrix_or_inplace():
    a = PackedMatrix(3, 9)
    b = PackedMatrix(3, 9)
    a.set(0, 1)
    b.set(0, 8)
    b.set(2, 3)
    a.or_inplace(b)
    assert a.get(0, 1) and a.get(0, 8) and a.get(2, 3)


def test_matrix_or_row_bits():
    mat = PackedMatrix(3, 9)
    bits = PackedBits.from_indices(9, [0, 4])
    mat.or_row_bits(1, bits)
    assert mat.get(1, 0) and mat.get(1, 4)
    assert not mat.get(0, 0)


def test_rows_contain():
    mat = PackedMatrix(4, 8)
    need = PackedBits.from_indices(8, [1, 2])
    for r in (0, 2):
        mat.set(r, 1)
        mat.set(r, 2)
    selector = np.array([True, False, True, False])
    assert mat.rows_contain(selector, need)
    selector = np.array([True, True, False, False])
    assert not mat.rows_contain(selector, need)


def test_rows_contain_empty_selector_is_vacuously_true():
    mat = PackedMatrix(3, 8)
    need = PackedBits.from_indices(8, [0])
    assert mat.rows_contain(np.zeros(3, dtype=bool), need)


def test_matrix_to_bool():
    mat = PackedMatrix(2, 10)
    mat.set(0, 0)
    mat.set(1, 9)
    dense = mat.to_bool()
    assert dense.shape == (2, 10)
    assert dense[0, 0] and dense[1, 9]
    assert dense.sum() == 2


def test_matrix_copy_independent():
    a = PackedMatrix(2, 8)
    b = a.copy()
    b.set(0, 0)
    assert not a.get(0, 0)


def test_matrix_rejects_bad_dimensions():
    with pytest.raises(ConfigurationError):
        PackedMatrix(0, 5)
    with pytest.raises(ConfigurationError):
        PackedMatrix(5, 0)
    with pytest.raises(ConfigurationError):
        PackedMatrix(2, 8, words=np.zeros((2, 2), dtype=np.uint8))


@settings(max_examples=40)
@given(
    rows=st.integers(1, 20),
    cols=st.integers(1, 60),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_matrix_or_matches_dense(rows, cols, seed):
    rng = np.random.default_rng(seed)
    d1 = rng.random((rows, cols)) < 0.3
    d2 = rng.random((rows, cols)) < 0.3
    a = PackedMatrix(rows, cols, np.packbits(d1, axis=1))
    b = PackedMatrix(rows, cols, np.packbits(d2, axis=1))
    a.or_inplace(b)
    assert np.array_equal(a.to_bool(), d1 | d2)
