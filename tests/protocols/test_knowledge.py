"""Unit and property tests for knowledge state and snapshotting."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocols.knowledge import GossipKnowledge, RelationalKnowledge


# ---------------------------------------------------------------- GossipKnowledge


def test_starts_with_own_gossip():
    kn = GossipKnowledge(8, owner=3)
    assert kn.knows(3)
    assert kn.known_count() == 1
    assert kn.unknown_mask().sum() == 7


def test_learn_returns_novelty():
    kn = GossipKnowledge(8, owner=0)
    assert kn.learn(4)
    assert not kn.learn(4)
    assert kn.knows(4)


def test_merge_is_union_and_reports_novelty():
    a = GossipKnowledge(8, owner=0)
    b = GossipKnowledge(8, owner=5)
    b.learn(6)
    assert a.merge(b.snapshot())
    assert a.knows(5) and a.knows(6)
    assert not a.merge(b.snapshot())  # nothing new the second time


def test_snapshot_is_cached_until_mutation():
    kn = GossipKnowledge(8, owner=0)
    s1 = kn.snapshot()
    s2 = kn.snapshot()
    assert s1 is s2  # the fan-out optimization
    kn.learn(1)
    s3 = kn.snapshot()
    assert s3 is not s1


def test_snapshot_immune_to_later_mutation():
    kn = GossipKnowledge(8, owner=0)
    snap = kn.snapshot()
    kn.learn(5)
    assert not snap.gossips.get(5)  # the snapshot stayed frozen
    assert kn.knows(5)


def test_knows_all_of():
    kn = GossipKnowledge(8, owner=0)
    kn.learn(1)
    kn.learn(2)
    from repro.protocols.bitset import PackedBits

    assert kn.knows_all_of(PackedBits.from_indices(8, [0, 2]))
    assert not kn.knows_all_of(PackedBits.from_indices(8, [0, 3]))


# ---------------------------------------------------------------- RelationalKnowledge


def test_relational_initial_state():
    rk = RelationalKnowledge(6, owner=2)
    assert rk.knows(2)
    assert rk.relation.get(2, 2)
    assert not rk.relation.get(2, 3)


def test_relational_merge_unions_both_sets():
    a = RelationalKnowledge(6, owner=0)
    b = RelationalKnowledge(6, owner=1)
    assert a.merge(b.snapshot())
    assert a.knows(1)
    assert a.relation.get(1, 1)  # learned that 1 knows its own gossip
    # invariant: own row covers own G
    assert a.relation.get(0, 1)


def test_relational_merge_novelty_detection():
    a = RelationalKnowledge(6, owner=0)
    b = RelationalKnowledge(6, owner=1)
    snap = b.snapshot()
    assert a.merge(snap)
    assert not a.merge(snap)


def test_relation_only_novelty_still_counts():
    # A payload that teaches no new gossip but new relation facts is
    # still novel (it advances the completion condition).
    a = RelationalKnowledge(4, owner=0)
    b = RelationalKnowledge(4, owner=1)
    a.merge(b.snapshot())
    # b now learns about 0 from someone else (simulate via direct set).
    b.gossips.set(0)
    b.relation.set(1, 0)
    b._snapshot = None
    assert a.merge(b.snapshot())


def test_dissemination_complete_small_system():
    # Two processes that exchanged everything and know they did.
    a = RelationalKnowledge(2, owner=0)
    b = RelationalKnowledge(2, owner=1)
    a.merge(b.snapshot())
    b.merge(a.snapshot())
    # a does not yet know that b knows 0.
    assert not a.dissemination_complete()
    a.merge(b.snapshot())
    assert a.dissemination_complete()


def test_dissemination_complete_over_known_universe_only():
    # A third process that never spoke is invisible to the condition.
    a = RelationalKnowledge(3, owner=0)
    b = RelationalKnowledge(3, owner=1)
    a.merge(b.snapshot())
    b.merge(a.snapshot())
    a.merge(b.snapshot())
    assert a.dissemination_complete()  # process 2 is not in a's universe


def test_relational_snapshot_frozen():
    a = RelationalKnowledge(4, owner=0)
    snap = a.snapshot()
    a.gossips.set(2)
    a.relation.set(0, 2)
    assert not snap.gossips.get(2)
    assert not snap.relation.get(0, 2)


# ---------------------------------------------------------------- properties


@settings(max_examples=40)
@given(
    n=st.integers(2, 40),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_merge_monotone(n, seed):
    """Merging never loses knowledge (G and I are monotone)."""
    rng = np.random.default_rng(seed)
    states = [RelationalKnowledge(n, owner=i) for i in range(min(n, 5))]
    for _ in range(10):
        i, j = rng.integers(len(states), size=2)
        if i == j:
            continue
        before_g = states[j].gossips.to_bool()
        before_i = states[j].relation.to_bool()
        states[j].merge(states[i].snapshot())
        after_g = states[j].gossips.to_bool()
        after_i = states[j].relation.to_bool()
        assert (after_g | ~before_g).all()
        assert (after_i | ~before_i).all()
        # Invariant: own row of I covers G.
        own_row = states[j].relation.to_bool()[states[j].owner]
        assert (own_row | ~after_g).all()


@settings(max_examples=30)
@given(
    n=st.integers(2, 30),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_full_exchange_reaches_completion(n, seed):
    """After enough all-pairs exchanges everyone believes completion."""
    k = min(n, 4)
    states = [RelationalKnowledge(n, owner=i) for i in range(k)]
    for _ in range(3):
        for i in range(k):
            for j in range(k):
                if i != j:
                    states[j].merge(states[i].snapshot())
    for s in states:
        assert s.dissemination_complete()
