"""Behavioural tests for the SEARS protocol."""

import math

import pytest

from repro.core.adversary import NullAdversary
from repro.core.strategies import DelayGroupStrategy
from repro.errors import ConfigurationError
from repro.protocols.sears import Sears, sears_fanout
from repro.sim.engine import simulate


def test_fanout_formula():
    # ceil(c * N^0.5 * ln N), capped at N-1.
    assert sears_fanout(100) == math.ceil(10 * math.log(100))
    assert sears_fanout(4) == 3  # cap at N-1
    assert sears_fanout(2) == 1


def test_fanout_respects_c_and_eps():
    assert sears_fanout(100, c=2.0) == min(99, math.ceil(20 * math.log(100)))
    assert sears_fanout(100, eps=0.0) == math.ceil(math.log(100))


def test_fanout_validation():
    with pytest.raises(ConfigurationError):
        sears_fanout(1)
    with pytest.raises(ConfigurationError):
        sears_fanout(10, eps=1.5)
    with pytest.raises(ConfigurationError):
        sears_fanout(10, c=0)


def test_patience_validation():
    with pytest.raises(ConfigurationError):
        Sears(patience=0)


def test_baseline_gathers_and_completes():
    outcome = simulate(Sears(), NullAdversary(), n=30, f=9, seed=0).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok


def test_time_complexity_roughly_constant_in_n():
    # SEARS's design goal: constant time complexity (paper §V-A.2c).
    times = []
    for n in (20, 60, 120):
        outcome = simulate(Sears(), NullAdversary(), n=n, f=int(0.3 * n), seed=1).outcome
        times.append(outcome.time_complexity())
    assert max(times) <= times[0] * 3  # flat up to small constants


def test_messages_quadratic_even_without_adversary():
    # §V-B.3: SEARS sacrifices message complexity by construction.
    n = 80
    outcome = simulate(Sears(), NullAdversary(), n=n, f=24, seed=2).outcome
    assert outcome.message_complexity() > n * n / 2


def test_fanout_used_per_step():
    proto = Sears()
    report = simulate(proto, NullAdversary(), n=40, f=12, seed=0)
    # Sends per process per action are (almost) always the fanout.
    for rho in range(40):
        actions = report.runtimes[rho].action_count
        assert report.outcome.sent[rho] <= actions * proto.fanout


def test_delay_attack_inflates_messages():
    n, f = 50, 15
    baseline = simulate(Sears(), NullAdversary(), n=n, f=f, seed=3).outcome
    attacked = simulate(Sears(), DelayGroupStrategy(1, 1), n=n, f=f, seed=3).outcome
    assert attacked.completed
    assert attacked.message_complexity() > 1.5 * baseline.message_complexity()


def test_no_completion_before_first_send():
    outcome = simulate(Sears(), NullAdversary(), n=2, f=0, seed=0).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok
    assert (outcome.sent >= 1).all()


def test_give_up_is_constant_rounds():
    # ceil(N / fanout): a constant number of rounds, preserving the
    # constant-time design even when the I-condition is unsatisfiable.
    a = Sears()
    simulate(a, NullAdversary(), n=50, f=15, seed=0)
    b = Sears()
    simulate(b, NullAdversary(), n=200, f=60, seed=0)
    assert a._give_up <= 6 and b._give_up <= 6


def test_time_stays_constant_under_delay_attack():
    # §V-B.3: "an adversary can only influence the message complexity
    # of SEARS" — normalised time stays bounded.
    n, f = 50, 15
    attacked = simulate(Sears(), DelayGroupStrategy(1, 1), n=n, f=f, seed=3).outcome
    assert attacked.time_complexity() < 20
