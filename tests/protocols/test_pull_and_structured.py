"""Tests for PullOnly and the structured foils.

The structured protocols exist to reproduce the paper's §V-A remark:
message-efficient deterministic schemes exist but do not survive
crashes, which is why the crash-tolerant all-to-all class (the
evaluated trio plus pull-based schemes) is the interesting one.
"""

import math

import pytest

from repro.core.adversary import NullAdversary
from repro.core.strategies import CrashGroupStrategy
from repro.errors import ConfigurationError
from repro.protocols.pull import PullOnly
from repro.protocols.structured import Coordinator, RecursiveDoubling
from repro.sim.engine import simulate


# ---------------------------------------------------------------- PullOnly


def test_pull_only_gathers_baseline():
    outcome = simulate(PullOnly(), NullAdversary(), n=30, f=9, seed=0).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok


def test_pull_only_gathers_under_crashes():
    # The coverage sleep rule makes gathering deterministic even when
    # the controlled group is crashed — the defining property that
    # earns PullOnly a place in the strict integration matrix.
    for seed in range(4):
        outcome = simulate(
            PullOnly(), CrashGroupStrategy(), n=30, f=9, seed=seed
        ).outcome
        assert outcome.completed
        assert outcome.rumor_gathering_ok


def test_pull_only_messages_subquadratic_baseline():
    # Pull-only pays ~2 messages per pull and keeps pulling during the
    # 4-step round trip, so its constant is large — but the *growth*
    # is far below quadratic (doubling N must not quadruple M).
    m40 = simulate(PullOnly(), NullAdversary(), n=40, f=0, seed=1).outcome
    m80 = simulate(PullOnly(), NullAdversary(), n=80, f=0, seed=1).outcome
    ratio = m80.message_complexity() / m40.message_complexity()
    assert ratio < 3.0
    assert m80.message_complexity() < 80 * 80


def test_pull_only_guarantee_flag():
    assert PullOnly.guarantees_gathering is True


# ---------------------------------------------------------------- RecursiveDoubling


def test_recursive_doubling_gathers_crash_free():
    for n in (2, 8, 13, 32, 50):
        outcome = simulate(RecursiveDoubling(), NullAdversary(), n=n, f=0, seed=0).outcome
        assert outcome.completed, n
        assert outcome.rumor_gathering_ok, n


def test_recursive_doubling_message_count_exact():
    # One send per process per round (the wrap target never equals
    # self for N >= 2): M = N * ceil(log2 N).
    for n in (8, 16, 50):
        outcome = simulate(RecursiveDoubling(), NullAdversary(), n=n, f=0, seed=0).outcome
        assert outcome.message_complexity() == n * math.ceil(math.log2(n))


def test_recursive_doubling_time_logarithmic():
    t64 = simulate(RecursiveDoubling(), NullAdversary(), n=64, f=0, seed=0).outcome
    t8 = simulate(RecursiveDoubling(), NullAdversary(), n=8, f=0, seed=0).outcome
    # 2 rounds ratio: log2(64)/log2(8) = 2; time follows, not N/N = 8.
    assert t64.time_complexity() < 3 * t8.time_complexity()


def test_recursive_doubling_breaks_under_crashes():
    # The fragility that motivates the paper's protocol class: crash
    # the controlled group at step 0 and gathering fails (relay chains
    # sever), while quiescence still holds.
    broke = 0
    for seed in range(5):
        outcome = simulate(
            RecursiveDoubling(), CrashGroupStrategy(), n=32, f=10, seed=seed
        ).outcome
        assert outcome.completed
        broke += not outcome.rumor_gathering_ok
    assert broke >= 4  # virtually always


def test_recursive_doubling_flagged_fragile():
    assert RecursiveDoubling.guarantees_gathering is False


# ---------------------------------------------------------------- Coordinator


def test_coordinator_gathers_crash_free():
    outcome = simulate(Coordinator(), NullAdversary(), n=25, f=0, seed=0).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok


def test_coordinator_message_count_near_2n():
    n = 40
    outcome = simulate(Coordinator(), NullAdversary(), n=n, f=0, seed=0).outcome
    # N-1 reports + N-1 broadcast sends.
    assert outcome.message_complexity() == 2 * (n - 1)


def test_coordinator_time_constant():
    t_small = simulate(Coordinator(), NullAdversary(), n=10, f=0, seed=0).outcome
    t_large = simulate(Coordinator(), NullAdversary(), n=200, f=0, seed=0).outcome
    assert t_large.time_complexity() <= t_small.time_complexity() + 2


def test_coordinator_dies_with_its_hub():
    outcome = simulate(
        Coordinator(),
        CrashGroupStrategy(group=[0]),  # kill exactly the coordinator
        n=20,
        f=2,
        seed=0,
    ).outcome
    assert outcome.completed  # quiescence survives
    assert not outcome.rumor_gathering_ok  # dissemination does not


def test_coordinator_tolerates_leaf_crashes():
    # Dead leaves only cost the patience window; the correct ones
    # still gather through the broadcast.
    outcome = simulate(
        Coordinator(),
        CrashGroupStrategy(group=[5, 6, 7]),
        n=20,
        f=6,
        seed=0,
    ).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok


def test_coordinator_patience_validation():
    with pytest.raises(ConfigurationError):
        Coordinator(patience=0)
