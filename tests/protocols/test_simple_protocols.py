"""Tests for RoundRobin (Example 1), Flood and PushOnly."""

import pytest

from repro.core.adversary import NullAdversary
from repro.core.strategies import CrashGroupStrategy
from repro.errors import ConfigurationError
from repro.protocols.flood import Flood
from repro.protocols.push import PushOnly
from repro.protocols.round_robin import RoundRobin
from repro.sim.engine import simulate


# ---------------------------------------------------------------- RoundRobin


def test_round_robin_message_complexity_is_exactly_n_squared_minus_n():
    # Example 1: M(O) = Theta(N^2); with this schedule it is exact.
    for n in (5, 12, 30):
        outcome = simulate(RoundRobin(), NullAdversary(), n=n, f=0, seed=0).outcome
        assert outcome.message_complexity() == n * (n - 1)


def test_round_robin_time_is_linear():
    # T_end = (N-1) local steps + delivery; T = T_end / 2 ~ N/2.
    for n in (10, 20, 40):
        outcome = simulate(RoundRobin(), NullAdversary(), n=n, f=0, seed=0).outcome
        assert n / 2 - 2 <= outcome.time_complexity() <= n / 2 + 2


def test_round_robin_gathers():
    outcome = simulate(RoundRobin(), NullAdversary(), n=15, f=0, seed=0).outcome
    assert outcome.rumor_gathering_ok


def test_round_robin_gathers_under_crashes():
    outcome = simulate(RoundRobin(), CrashGroupStrategy(), n=20, f=6, seed=1).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok


def test_round_robin_deterministic():
    a = simulate(RoundRobin(), NullAdversary(), n=10, f=0, seed=0).outcome
    b = simulate(RoundRobin(), NullAdversary(), n=10, f=0, seed=99).outcome
    # The protocol is deterministic: seeds cannot change it.
    assert a.message_complexity() == b.message_complexity()
    assert a.t_end == b.t_end


# ---------------------------------------------------------------- Flood


def test_flood_one_round_n_squared():
    for n in (5, 20):
        outcome = simulate(Flood(), NullAdversary(), n=n, f=0, seed=0).outcome
        assert outcome.message_complexity() == n * (n - 1)
        assert outcome.time_complexity() <= 1.5
        assert outcome.rumor_gathering_ok


def test_flood_survives_crashes():
    outcome = simulate(Flood(), CrashGroupStrategy(), n=20, f=8, seed=0).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok


# ---------------------------------------------------------------- PushOnly


def test_push_only_completes():
    outcome = simulate(PushOnly(), NullAdversary(), n=30, f=9, seed=0).outcome
    assert outcome.completed


def test_push_only_gathers_with_high_probability():
    # Gathering is probabilistic for push-only; assert over seeds.
    ok = sum(
        simulate(PushOnly(), NullAdversary(), n=25, f=0, seed=s).outcome.rumor_gathering_ok
        for s in range(5)
    )
    assert ok >= 4


def test_push_only_flags_probabilistic_gathering():
    assert PushOnly.guarantees_gathering is False


def test_push_only_patience_validation():
    with pytest.raises(ConfigurationError):
        PushOnly(extra_patience=-1)


def test_push_only_messages_near_n_log_n():
    n = 60
    outcome = simulate(PushOnly(), NullAdversary(), n=n, f=0, seed=1).outcome
    assert outcome.message_complexity() < n * n / 2
