"""Behavioural tests for the Push-Pull protocol."""

import numpy as np

from repro.core.adversary import NullAdversary
from repro.core.strategies import CrashGroupStrategy
from repro.protocols.push_pull import PullRequest, PushPull
from repro.sim.engine import simulate
from repro.sim.trace import EventKind


def test_pull_request_is_a_singleton():
    assert PullRequest() is PullRequest()


def test_baseline_gathers_and_completes():
    outcome = simulate(PushPull(), NullAdversary(), n=30, f=9, seed=0).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok


def test_baseline_time_is_sublinear():
    # ~log N rounds; even a loose bound separates it from Theta(N).
    outcome = simulate(PushPull(), NullAdversary(), n=64, f=19, seed=1).outcome
    assert outcome.time_complexity() < 64 / 4


def test_baseline_messages_well_below_quadratic():
    n = 64
    outcome = simulate(PushPull(), NullAdversary(), n=n, f=19, seed=1).outcome
    assert outcome.message_complexity() < n * n / 2


def test_no_self_sends_and_valid_receivers():
    report = simulate(
        PushPull(), NullAdversary(), n=16, f=4, seed=3, record_events=True
    )
    for event in report.trace.events_of(EventKind.SEND):
        assert event.subject != event.detail
        assert 0 <= event.detail < 16


def test_each_process_pulls_each_target_at_most_once():
    proto = PushPull()
    simulate(proto, NullAdversary(), n=20, f=6, seed=2)
    # The pulled matrix never exceeds one pull per (rho, target); the
    # diagonal is pre-marked.
    assert proto._pulled.dtype == bool
    assert proto._pulled.diagonal().all()


def test_pushes_own_gossip_at_most_once_per_target():
    proto = PushPull()
    report = simulate(proto, NullAdversary(), n=20, f=6, seed=2, record_events=True)
    # Total pushes are bounded by N(N-1) by the pushed-set rule; with
    # pulls and answers, total sends stay under ~3 N^2.
    assert report.outcome.message_complexity() < 3 * 20 * 20


def test_crashed_targets_force_extra_pull_rounds():
    """Strategy 1's mechanism: a corpse must still be pulled once."""
    n, f = 40, 12
    baseline = simulate(PushPull(), NullAdversary(), n=n, f=f, seed=5).outcome
    attacked = simulate(PushPull(), CrashGroupStrategy(), n=n, f=f, seed=5).outcome
    assert attacked.completed
    assert attacked.rumor_gathering_ok
    # The crashed group adds ~|C| pull steps to everyone's schedule.
    assert attacked.time_complexity() > baseline.time_complexity()


def test_knowledge_of_reports_bool_vector():
    proto = PushPull()
    simulate(proto, NullAdversary(), n=10, f=0, seed=0)
    known = proto.knowledge_of(0)
    assert known.dtype == bool
    assert known.shape == (10,)
    assert known.all()  # gathering done


def test_deterministic_under_seed():
    a = simulate(PushPull(), NullAdversary(), n=25, f=7, seed=11).outcome
    b = simulate(PushPull(), NullAdversary(), n=25, f=7, seed=11).outcome
    assert a.message_complexity() == b.message_complexity()
    assert a.t_end == b.t_end


def test_different_seeds_differ():
    a = simulate(PushPull(), NullAdversary(), n=25, f=7, seed=1).outcome
    b = simulate(PushPull(), NullAdversary(), n=25, f=7, seed=2).outcome
    # Aggregates can coincide by chance; the per-process send vectors
    # of a randomized protocol virtually never do.
    assert a.sent.tolist() != b.sent.tolist()


def test_smallest_system():
    outcome = simulate(PushPull(), NullAdversary(), n=2, f=0, seed=0).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok
    assert np.all(outcome.sent >= 1)
