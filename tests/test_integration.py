"""Integration matrix: every protocol vs every adversary.

The coarse contract of the whole system: any registered protocol under
any registered adversary terminates, respects the model, and (for the
deterministic-gathering protocols) achieves rumor gathering.
"""

import pytest

from repro.core.registry import make_adversary
from repro.protocols.registry import available_protocols, make_protocol
from repro.sim.engine import simulate

PROTOCOLS = available_protocols()
ADVERSARIES = ["none", "ugf", "oblivious", "str-1", "str-2.1.0", "str-2.1.1"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("adversary", ADVERSARIES)
def test_matrix_terminates_and_respects_model(protocol, adversary):
    report = simulate(
        make_protocol(protocol),
        make_adversary(adversary),
        n=30,
        f=9,
        seed=1,
        max_steps=400_000,
    )
    outcome = report.outcome
    assert outcome.completed, (protocol, adversary)
    assert outcome.crash_count <= 9
    assert outcome.message_complexity() == report.trace.total_sent()
    if make_protocol(protocol).guarantees_gathering:
        # Deterministic gathering must hold under every adversary.
        assert outcome.rumor_gathering_ok, (protocol, adversary)
    elif protocol != "push" and adversary == "none":
        # The structured foils gather only in benign runs — both
        # crashes *and* delays break their fixed schedules, which is
        # precisely why the paper's crash-tolerant partial-synchrony
        # class is the interesting one.
        assert outcome.rumor_gathering_ok, (protocol, adversary)


@pytest.mark.parametrize("protocol", ["push-pull", "ears", "sears"])
def test_ugf_sampled_mode_terminates(protocol):
    # Algorithm-1-faithful Basel draws with a small tau so tau^k stays
    # simulable even for the truncation's largest k.
    outcome = simulate(
        make_protocol(protocol),
        make_adversary("ugf", kl_mode="sampled", max_k=3, tau=3),
        n=24,
        f=8,
        seed=3,
        max_steps=400_000,
    ).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok


@pytest.mark.parametrize("seed", range(8))
def test_ugf_many_seeds_on_push_pull(seed):
    outcome = simulate(
        make_protocol("push-pull"),
        make_adversary("ugf"),
        n=40,
        f=12,
        seed=seed,
    ).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok


def test_large_system_smoke():
    outcome = simulate(
        make_protocol("push-pull"), make_adversary("ugf"), n=200, f=60, seed=0
    ).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok


def test_f_zero_only_null_like_behaviour():
    # With F=0 no strategy can crash or pick a group: UGF degenerates
    # to (at most) retimings of an empty set — the run matches baseline.
    base = simulate(
        make_protocol("round-robin"), make_adversary("none"), n=12, f=0, seed=0
    ).outcome
    attacked = simulate(
        make_protocol("round-robin"), make_adversary("ugf"), n=12, f=0, seed=0
    ).outcome
    assert attacked.message_complexity() == base.message_complexity()
    assert attacked.t_end == base.t_end
