"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.adversary import NullAdversary
from repro.core.registry import make_adversary
from repro.protocols.registry import make_protocol
from repro.sim.engine import SimulationReport, simulate


def run(
    protocol: str,
    adversary: str = "none",
    *,
    n: int = 20,
    f: int = 6,
    seed: int = 0,
    max_steps: int = 500_000,
    record_events: bool = False,
    protocol_kwargs: dict | None = None,
    adversary_kwargs: dict | None = None,
) -> SimulationReport:
    """Build-and-run one small simulation from registry names."""
    return simulate(
        make_protocol(protocol, **(protocol_kwargs or {})),
        make_adversary(adversary, **(adversary_kwargs or {})),
        n=n,
        f=f,
        seed=seed,
        max_steps=max_steps,
        record_events=record_events,
    )


@pytest.fixture
def null_adversary() -> NullAdversary:
    return NullAdversary()


@pytest.fixture(autouse=True)
def _isolated_trial_cache(tmp_path_factory, monkeypatch):
    """Keep CLI/campaign default caching away from the real user cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("trial-cache")))
    # Metrics default to off in tests regardless of the outer shell;
    # the obs battery turns them on explicitly.
    monkeypatch.delenv("REPRO_METRICS", raising=False)
