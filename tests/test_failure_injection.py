"""Failure injection: crashes and retimings at adversarially bad times.

Beyond UGF's structured strategies, these tests inject failures at
pathological moments — mid-dissemination, during wake cascades, right
after a process was woken — and assert the kernel's invariants and the
protocols' fault tolerance hold regardless.
"""

import numpy as np
import pytest

from repro.core.fixed import ScheduledAdversary
from repro.protocols.registry import make_protocol
from repro.sim.engine import simulate

PROTOCOLS = ["push-pull", "ears", "round-robin", "flood"]


def random_crash_script(rng, n, f, horizon):
    victims = rng.choice(n, size=f, replace=False)
    steps = rng.integers(0, horizon, size=f)
    script: dict[int, list[tuple]] = {}
    for v, s in zip(victims, steps):
        script.setdefault(int(s), []).append(("crash", int(v)))
    return script


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("seed", range(4))
def test_random_mid_run_crashes(protocol, seed):
    rng = np.random.default_rng(seed)
    n, f = 30, 9
    script = random_crash_script(rng, n, f, horizon=25)
    outcome = simulate(
        make_protocol(protocol),
        ScheduledAdversary(script),
        n=n,
        f=f,
        seed=seed,
        max_steps=400_000,
    ).outcome
    assert outcome.completed, protocol
    assert outcome.rumor_gathering_ok, protocol
    assert outcome.crash_count <= f


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_staggered_one_crash_per_step(protocol):
    # One crash per step during the hottest dissemination phase.
    n, f = 24, 8
    script = {t: [("crash", t)] for t in range(1, f + 1)}
    outcome = simulate(
        make_protocol(protocol),
        ScheduledAdversary(script),
        n=n,
        f=f,
        seed=0,
        max_steps=400_000,
    ).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok
    # Crashes scheduled after quiescence never fire (flood is done in
    # ~2 steps); those that fired are exactly the scheduled ones.
    assert set(outcome.crashed) <= set(range(1, f + 1))
    if protocol != "flood":
        assert set(outcome.crashed) == set(range(1, f + 1))


@pytest.mark.parametrize("protocol", ["push-pull", "ears"])
def test_retime_storm(protocol):
    # Aggressive scattered retimings of random processes mid-run.
    rng = np.random.default_rng(7)
    n = 24
    script: dict[int, list[tuple]] = {}
    for _ in range(20):
        step = int(rng.integers(0, 30))
        rho = int(rng.integers(0, n))
        if rng.random() < 0.5:
            script.setdefault(step, []).append(("delta", rho, int(rng.integers(1, 9))))
        else:
            script.setdefault(step, []).append(("d", rho, int(rng.integers(1, 17))))
    outcome = simulate(
        make_protocol(protocol),
        ScheduledAdversary(script),
        n=n,
        f=0,
        seed=1,
        max_steps=400_000,
    ).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok
    # Normaliser picked up the storm's maxima.
    assert outcome.max_local_step_time >= 1
    assert outcome.max_delivery_time >= 1


def test_crash_entire_budget_at_once_mid_run():
    n, f = 20, 10
    script = {8: [("crash", rho) for rho in range(f)]}
    outcome = simulate(
        make_protocol("ears"),
        ScheduledAdversary(script),
        n=n,
        f=f,
        seed=2,
        max_steps=400_000,
    ).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok
    assert outcome.crash_count == f


def test_crash_just_after_wake():
    # Crash a process the step after it is first likely to wake; the
    # kernel must handle asleep->crashed transitions cleanly.
    n, f = 12, 3
    script = {6: [("crash", 3)], 7: [("crash", 5)], 9: [("crash", 7)]}
    outcome = simulate(
        make_protocol("flood"),
        ScheduledAdversary(script),
        n=n,
        f=f,
        seed=0,
        max_steps=100_000,
    ).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok


@pytest.mark.parametrize("protocol", ["push-pull", "ears"])
def test_combined_crash_and_delay_injection(protocol):
    n, f = 24, 6
    script = {
        0: [("delta", 0, 5), ("d", 1, 12)],
        4: [("crash", 2), ("crash", 3)],
        10: [("d", 0, 20)],
        15: [("crash", 4)],
    }
    outcome = simulate(
        make_protocol(protocol),
        ScheduledAdversary(script),
        n=n,
        f=f,
        seed=3,
        max_steps=400_000,
    ).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok
    assert outcome.max_delivery_time == 20
    assert outcome.max_local_step_time == 5
