"""Unit tests for the deterministic named RNG streams."""

import numpy as np

from repro.sim.rng import RandomSource


def test_same_seed_same_stream():
    a = RandomSource(42).stream("protocol")
    b = RandomSource(42).stream("protocol")
    assert np.array_equal(a.integers(0, 1000, 32), b.integers(0, 1000, 32))


def test_different_labels_differ():
    source = RandomSource(42)
    a = source.stream("protocol").integers(0, 1000, 32)
    b = source.stream("adversary").integers(0, 1000, 32)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomSource(1).stream("protocol").integers(0, 1000, 32)
    b = RandomSource(2).stream("protocol").integers(0, 1000, 32)
    assert not np.array_equal(a, b)


def test_stream_request_is_repeatable():
    source = RandomSource(7)
    a = source.stream("x").integers(0, 1000, 16)
    b = source.stream("x").integers(0, 1000, 16)
    assert np.array_equal(a, b)


def test_fork_is_deterministic():
    a = RandomSource(9).fork(3)
    b = RandomSource(9).fork(3)
    assert a.seed == b.seed


def test_fork_indices_are_independent():
    source = RandomSource(9)
    seeds = {source.fork(i).seed for i in range(64)}
    assert len(seeds) == 64


def test_seed_property_round_trips():
    assert RandomSource(123).seed == 123
