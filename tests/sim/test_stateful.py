"""Hypothesis stateful tests of kernel components.

Model-based testing: drive `Network` + `TimingTable` (and `Mailbox`)
through random operation sequences while maintaining a trivial Python
model, asserting the component and the model never disagree. This
catches interaction bugs (e.g. crash-vs-inflight accounting) that
example-based tests tend to miss.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.timing import TimingTable
from repro.sim.trace import TraceRecorder

N = 6


class NetworkMachine(RuleBasedStateMachine):
    """Network + timing vs. a dict-of-lists reference model."""

    def __init__(self):
        super().__init__()
        self.timing = TimingTable(N)
        self.trace = TraceRecorder(N)
        self.net = Network(N, self.timing, self.trace)
        self.now = 0
        self.crashed: set[int] = set()
        # model: arrival step -> list of (sender, receiver)
        self.model: dict[int, list[tuple[int, int]]] = {}
        self.model_sent = 0
        self.model_delivered = 0

    # ---------------------------------------------------------------- rules

    @rule(
        sender=st.integers(0, N - 1),
        receiver=st.integers(0, N - 1),
        d=st.integers(1, 5),
    )
    def send(self, sender, receiver, d):
        if sender == receiver:
            return
        self.timing.set_delivery_time(sender, d)
        self.net.send(sender, receiver, payload=None, now=self.now)
        self.model.setdefault(self.now + d, []).append((sender, receiver))
        self.model_sent += 1

    @rule()
    def advance_and_deliver(self):
        self.now += 1
        got: list[Message] = []
        self.net.deliver_due(self.now, got.append)
        expected = [
            (s, r)
            for (s, r) in self.model.pop(self.now, [])
            if r not in self.crashed
        ]
        assert sorted((m.sender, m.receiver) for m in got) == sorted(expected)
        self.model_delivered += len(expected)

    @rule(rho=st.integers(0, N - 1))
    def crash(self, rho):
        self.net.on_crash(rho)
        self.crashed.add(rho)

    # ---------------------------------------------------------------- invariants

    @invariant()
    def inflight_matches_model(self):
        pending_to_correct = sum(
            1
            for step, msgs in self.model.items()
            for (_, r) in msgs
            if r not in self.crashed
        )
        assert self.net.inflight_to_correct == pending_to_correct

    @invariant()
    def counters_match(self):
        assert self.trace.sent.sum() == self.model_sent
        assert self.trace.received.sum() == self.model_delivered

    @invariant()
    def next_arrival_is_min_pending(self):
        arrival = self.net.next_arrival_step()
        future = [s for s, msgs in self.model.items() if msgs]
        if not future:
            assert arrival is None
        else:
            assert arrival == min(future)


TestNetworkMachine = NetworkMachine.TestCase
TestNetworkMachine.settings = settings(max_examples=40, stateful_step_count=40, deadline=None)


class MailboxMachine(RuleBasedStateMachine):
    """Mailbox vs. a plain list."""

    def __init__(self):
        super().__init__()
        self.box = Mailbox()
        self.model: list[int] = []
        self.counter = 0
        self.total = 0

    @rule()
    def put(self):
        self.counter += 1
        msg = Message(0, 1, self.counter, sent_at=0, arrives_at=1)
        self.box.put(msg)
        self.model.append(self.counter)
        self.total += 1

    @rule()
    def drain(self):
        got = [m.payload for m in self.box.drain()]
        assert got == self.model
        self.model = []

    @invariant()
    def lengths_agree(self):
        assert len(self.box) == len(self.model)
        assert bool(self.box) == bool(self.model)
        assert self.box.total_received == self.total


TestMailboxMachine = MailboxMachine.TestCase
TestMailboxMachine.settings = settings(max_examples=30, stateful_step_count=30, deadline=None)


class TimingMachine(RuleBasedStateMachine):
    """TimingTable maxima vs. running Python maxima."""

    def __init__(self):
        super().__init__()
        self.table = TimingTable(N)
        self.max_delta = 1
        self.max_d = 1

    @rule(rho=st.integers(0, N - 1), value=st.integers(1, 100))
    def set_delta(self, rho, value):
        self.table.set_local_step_time(rho, value)
        self.max_delta = max(self.max_delta, value)

    @rule(rho=st.integers(0, N - 1), value=st.integers(1, 100))
    def set_d(self, rho, value):
        self.table.set_delivery_time(rho, value)
        self.max_d = max(self.max_d, value)

    @invariant()
    def maxima_agree(self):
        assert self.table.max_local_step_time == self.max_delta
        assert self.table.max_delivery_time == self.max_d

    @invariant()
    def currents_in_bounds(self):
        deltas, ds = self.table.snapshot()
        assert deltas.max() <= self.max_delta
        assert ds.max() <= self.max_d
        assert deltas.min() >= 1 and ds.min() >= 1


TestTimingMachine = TimingMachine.TestCase
TestTimingMachine.settings = settings(max_examples=30, stateful_step_count=50, deadline=None)
