"""Unit tests for the per-process mailbox."""

from repro.sim.mailbox import Mailbox
from repro.sim.messages import Message


def _msg(i: int) -> Message:
    return Message(sender=0, receiver=1, payload=i, sent_at=i, arrives_at=i + 1)


def test_empty_mailbox():
    box = Mailbox()
    assert len(box) == 0
    assert not box
    assert box.drain() == []
    assert box.total_received == 0


def test_put_then_drain_preserves_order():
    box = Mailbox()
    messages = [_msg(i) for i in range(5)]
    for m in messages:
        box.put(m)
    assert len(box) == 5
    assert box.drain() == messages


def test_drain_empties_the_box():
    box = Mailbox()
    box.put(_msg(0))
    box.drain()
    assert len(box) == 0
    assert box.drain() == []


def test_total_received_counts_across_drains():
    box = Mailbox()
    box.put(_msg(0))
    box.drain()
    box.put(_msg(1))
    box.put(_msg(2))
    assert box.total_received == 3


def test_bool_reflects_pending():
    box = Mailbox()
    assert not box
    box.put(_msg(0))
    assert box


def test_drain_recycles_lists_by_swapping():
    """The returned list is valid until the next drain, then recycled.

    Two backing lists alternate: consecutive drains return distinct
    objects (the engine reads a drained inbox while the mailbox may
    already collect new arrivals), and the list handed out two drains
    ago is reused rather than reallocated.
    """
    box = Mailbox()
    box.put(_msg(0))
    first = box.drain()
    assert [m.payload for m in first] == [0]
    box.put(_msg(1))
    second = box.drain()
    assert first is not second
    assert [m.payload for m in second] == [1]
    # Third drain recycles the first list's storage (swap, no alloc).
    box.put(_msg(2))
    third = box.drain()
    assert third is first
    assert [m.payload for m in third] == [2]
