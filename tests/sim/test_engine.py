"""Semantics tests for the simulation engine.

These pin down the execution model decisions documented in DESIGN.md:
local-step timing, delivery ordering, wake-ups, crash-drop ordering,
fast-forward equivalence, termination and the complexity measures.
"""

import numpy as np
import pytest

from repro.core.adversary import Adversary, NullAdversary
from repro.core.fixed import ScheduledAdversary
from repro.errors import (
    ConfigurationError,
    CrashBudgetExceeded,
    IncompleteRunError,
    SimulationError,
)
from repro.protocols.base import GossipProtocol, LocalStep
from repro.sim.engine import Simulator, simulate
from repro.sim.trace import EventKind


class OneShot(GossipProtocol):
    """Process 0 sends one message to process 1 at its first step."""

    name = "one-shot"

    def _allocate(self):
        self.fired = False
        self.deliveries = []  # (receiver, step, payload)

    def on_local_step(self, ctx: LocalStep) -> bool:
        for msg in ctx.inbox:
            self.deliveries.append((ctx.rho, ctx.now, msg.payload))
        if ctx.rho == 0 and not self.fired:
            ctx.send(1, "ping")
            self.fired = True
        return True

    def knowledge_of(self, rho):
        return np.ones(self.n, dtype=bool)


class PingPong(GossipProtocol):
    """0 and 1 bounce a counter until it reaches a limit."""

    name = "ping-pong"

    def __init__(self, limit: int = 4):
        self.limit = limit

    def _allocate(self):
        self.started = False
        self.bounce_steps = []

    def on_local_step(self, ctx: LocalStep) -> bool:
        if ctx.rho == 0 and not self.started:
            self.started = True
            ctx.send(1, 0)
            return True
        for msg in ctx.inbox:
            count = msg.payload + 1
            self.bounce_steps.append((ctx.rho, ctx.now, count))
            if count < self.limit:
                ctx.send(msg.sender, count)
        return True

    def knowledge_of(self, rho):
        return np.ones(self.n, dtype=bool)


class Idle(GossipProtocol):
    """Everyone sleeps immediately without sending."""

    name = "idle"

    def _allocate(self):
        pass

    def on_local_step(self, ctx: LocalStep) -> bool:
        return True

    def knowledge_of(self, rho):
        return np.ones(self.n, dtype=bool)


class Insomniac(GossipProtocol):
    """Never sleeps, never sends: must hit max_steps."""

    name = "insomniac"

    def _allocate(self):
        pass

    def on_local_step(self, ctx: LocalStep) -> bool:
        return False

    def knowledge_of(self, rho):
        return np.ones(self.n, dtype=bool)


# ---------------------------------------------------------------- timing


def test_first_emission_at_delta_and_arrival_at_delta_plus_d():
    proto = OneShot()
    adversary = ScheduledAdversary({0: [("delta", 0, 5), ("d", 0, 3)]})
    report = simulate(proto, adversary, n=2, f=0, seed=0, record_events=True)
    sends = list(report.trace.events_of(EventKind.SEND))
    delivers = list(report.trace.events_of(EventKind.DELIVER))
    # First local step begins at t=0, ends (emits) at delta=5.
    assert sends[0].step == 5
    # Arrival d=3 steps later; receiver (asleep) wakes and acts there.
    assert delivers[0].step == 8
    assert proto.deliveries == [(1, 8, "ping")]


def test_default_round_trip_takes_delta_plus_d_per_hop():
    proto = PingPong(limit=3)
    simulate(proto, NullAdversary(), n=2, f=0, seed=0)
    # 0 emits at 1 (end of first local step), arrival at 2; reply
    # emitted at 3, arrives 4; etc. Each hop costs delta + d = 2.
    assert proto.bounce_steps == [(1, 2, 1), (0, 4, 2), (1, 6, 3)]


def test_sleeping_receiver_wakes_and_acts_at_arrival_step():
    proto = OneShot()
    report = simulate(proto, NullAdversary(), n=2, f=0, seed=0, record_events=True)
    wakes = list(report.trace.events_of(EventKind.WAKE))
    assert len(wakes) == 1
    assert wakes[0].subject == 1
    deliver = next(report.trace.events_of(EventKind.DELIVER))
    assert wakes[0].step == deliver.step


# ---------------------------------------------------------------- crashes


def test_crash_in_after_step_drops_messages_sent_that_step():
    # The adversary crashes process 1 the moment process 0's send is
    # observed (Strategy 2.k.0's move): the message must never arrive.
    class CrashReceiver(Adversary):
        name = "crash-receiver"

        def setup(self, view, controls):
            pass

        def after_step(self, view, controls):
            for msg in view.sends_this_step:
                if view.is_correct(msg.receiver):
                    controls.crash(msg.receiver)

    proto = OneShot()
    report = simulate(proto, CrashReceiver(), n=2, f=1, seed=0, record_events=True)
    assert proto.deliveries == []
    assert report.trace.received[1] == 0
    assert report.trace.sent[0] == 1  # the send still counts (M_rho)
    assert report.outcome.crashed == (1,)
    # The run quiesces with the message still in flight toward the
    # corpse — inert messages must not keep the simulation alive.
    assert report.outcome.completed


def test_scheduled_crash_at_step_zero_prevents_everything():
    proto = OneShot()
    adversary = ScheduledAdversary({0: [("crash", 0)]})
    report = simulate(proto, adversary, n=2, f=1, seed=0)
    assert not proto.fired
    assert report.outcome.sent.sum() == 0


def test_crash_budget_enforced_by_kernel():
    adversary = ScheduledAdversary({0: [("crash", 0), ("crash", 1)]})
    with pytest.raises(CrashBudgetExceeded):
        simulate(Idle(), adversary, n=3, f=1, seed=0)


def test_crash_is_idempotent_and_does_not_double_draw():
    adversary = ScheduledAdversary({0: [("crash", 0), ("crash", 0), ("crash", 1)]})
    report = simulate(Idle(), adversary, n=3, f=2, seed=0)
    assert set(report.outcome.crashed) == {0, 1}


def test_crash_of_unknown_process_rejected():
    adversary = ScheduledAdversary({0: [("crash", 99)]})
    with pytest.raises(SimulationError):
        simulate(Idle(), adversary, n=3, f=2, seed=0)


# ---------------------------------------------------------------- termination


def test_idle_run_completes_immediately():
    report = simulate(Idle(), NullAdversary(), n=5, f=0, seed=0)
    o = report.outcome
    assert o.completed
    assert o.t_end == 0  # everyone slept at their first step (t=0)
    assert o.time_complexity() == 0.0
    assert o.message_complexity() == 0


def test_insomniac_truncates_at_max_steps():
    report = simulate(Insomniac(), NullAdversary(), n=3, f=0, seed=0, max_steps=50)
    o = report.outcome
    assert not o.completed
    with pytest.raises(IncompleteRunError):
        o.message_complexity()
    with pytest.raises(IncompleteRunError):
        o.time_complexity()
    assert o.message_complexity(allow_truncated=True) == 0


def test_t_end_is_last_final_sleep():
    proto = PingPong(limit=3)
    report = simulate(proto, NullAdversary(), n=2, f=0, seed=0)
    # Last bounce processed at step 6 (see round-trip test); the actor
    # sleeps then, and that is T_end.
    assert report.outcome.t_end == 6


def test_time_normalisation_uses_maxima():
    proto = OneShot()
    adversary = ScheduledAdversary({0: [("delta", 1, 4), ("d", 1, 7)]})
    outcome = simulate(proto, adversary, n=2, f=0, seed=0).outcome
    assert outcome.max_local_step_time == 4
    assert outcome.max_delivery_time == 7
    assert outcome.time_complexity() == outcome.t_end / 11


# ---------------------------------------------------------------- fast-forward


def test_fast_forward_equivalent_to_every_step():
    # Same protocol/adversary, once with fast-forward (default), once
    # with an adversary that demands every step: identical outcomes.
    class EveryStepNull(NullAdversary):
        wants_every_step = True

    adversary = ScheduledAdversary({0: [("delta", 0, 50), ("d", 0, 30)]})
    fast = simulate(OneShot(), adversary, n=2, f=0, seed=1, record_events=True)

    class EveryStepScheduled(ScheduledAdversary):
        wants_every_step = True

    slow_adv = EveryStepScheduled({0: [("delta", 0, 50), ("d", 0, 30)]})
    slow = simulate(OneShot(), slow_adv, n=2, f=0, seed=1, record_events=True)

    assert fast.outcome.t_end == slow.outcome.t_end
    assert fast.outcome.sent.tolist() == slow.outcome.sent.tolist()
    fast_events = [(e.step, e.kind, e.subject) for e in fast.trace.events]
    slow_events = [(e.step, e.kind, e.subject) for e in slow.trace.events]
    assert fast_events == slow_events
    # ... but the fast run visited far fewer steps.
    assert fast.outcome.steps_simulated < slow.outcome.steps_simulated


def test_adversary_wakeup_steps_are_visited():
    # A scheduled retiming at a quiet step must still be applied.
    proto = PingPong(limit=2)
    adversary = ScheduledAdversary({3: [("delta", 1, 2)]})
    outcome = simulate(proto, adversary, n=2, f=0, seed=0).outcome
    assert outcome.max_local_step_time == 2


# ---------------------------------------------------------------- misc


def test_simulator_is_single_use():
    sim = Simulator(Idle(), NullAdversary(), n=3, f=0, seed=0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run()


def test_configuration_validation():
    with pytest.raises(ConfigurationError):
        Simulator(Idle(), NullAdversary(), n=1, f=0)
    with pytest.raises(ConfigurationError):
        Simulator(Idle(), NullAdversary(), n=5, f=5)
    with pytest.raises(ConfigurationError):
        Simulator(Idle(), NullAdversary(), n=5, f=-1)
    with pytest.raises(ConfigurationError):
        Simulator(Idle(), NullAdversary(), n=5, f=0, max_steps=0)


def test_determinism_same_seed_same_outcome():
    a = simulate(OneShot(), NullAdversary(), n=2, f=0, seed=9).outcome
    b = simulate(OneShot(), NullAdversary(), n=2, f=0, seed=9).outcome
    assert a.t_end == b.t_end
    assert a.sent.tolist() == b.sent.tolist()


def test_rumor_gathering_flag_reflects_protocol_knowledge():
    class NeverLearns(Idle):
        def knowledge_of(self, rho):
            known = np.zeros(self.n, dtype=bool)
            known[rho] = True
            return known

    outcome = simulate(NeverLearns(), NullAdversary(), n=3, f=0, seed=0).outcome
    assert outcome.completed
    assert not outcome.rumor_gathering_ok
