"""Unit tests for the in-flight network."""

import pytest

from repro.errors import ProtocolViolation, SimulationError
from repro.sim.network import Network
from repro.sim.timing import TimingTable
from repro.sim.trace import TraceRecorder


def make_network(n: int = 4):
    timing = TimingTable(n)
    trace = TraceRecorder(n)
    return Network(n, timing, trace), timing, trace


def collect(net: Network, now: int):
    got = []
    net.deliver_due(now, got.append)
    return got


def test_send_arrives_after_delivery_time():
    net, timing, _ = make_network()
    timing.set_delivery_time(0, 3)
    msg = net.send(0, 1, "hello", now=5)
    assert msg.arrives_at == 8
    assert msg.latency() == 3
    assert collect(net, 7) == []
    assert [m.payload for m in collect(net, 8)] == ["hello"]


def test_delivery_time_read_at_send_time():
    net, timing, _ = make_network()
    msg = net.send(0, 1, "a", now=1)  # d=1 -> arrives 2
    timing.set_delivery_time(0, 100)
    later = net.send(0, 1, "b", now=1)
    assert msg.arrives_at == 2
    assert later.arrives_at == 101


def test_rejects_self_send():
    net, _, _ = make_network()
    with pytest.raises(ProtocolViolation):
        net.send(2, 2, "x", now=0)


def test_rejects_out_of_range_receiver():
    net, _, _ = make_network()
    with pytest.raises(ProtocolViolation):
        net.send(0, 9, "x", now=0)
    with pytest.raises(ProtocolViolation):
        net.send(0, -1, "x", now=0)


def test_messages_to_crashed_receiver_are_dropped():
    net, _, trace = make_network()
    net.send(0, 1, "x", now=0)  # arrives 1
    net.on_crash(1)
    assert collect(net, 1) == []
    assert trace.dropped[1] == 1


def test_sends_to_already_crashed_receiver_still_count():
    net, _, trace = make_network()
    net.on_crash(1)
    net.send(0, 1, "x", now=0)
    assert trace.sent[0] == 1
    assert net.inflight_to_correct == 0


def test_inflight_to_correct_bookkeeping():
    net, _, _ = make_network()
    net.send(0, 1, "x", now=0)
    net.send(0, 2, "y", now=0)
    assert net.inflight_to_correct == 2
    net.on_crash(1)
    assert net.inflight_to_correct == 1
    collect(net, 1)
    assert net.inflight_to_correct == 0


def test_double_crash_does_not_double_discount():
    net, _, _ = make_network()
    net.send(0, 1, "x", now=0)
    net.on_crash(1)
    net.on_crash(1)
    assert net.inflight_to_correct == 0


def test_next_arrival_step():
    net, timing, _ = make_network()
    assert net.next_arrival_step() is None
    timing.set_delivery_time(0, 5)
    net.send(0, 1, "x", now=0)
    timing.set_delivery_time(0, 2)
    net.send(0, 2, "y", now=0)
    assert net.next_arrival_step() == 2


def test_deliveries_must_be_in_order():
    net, _, _ = make_network()
    net.send(0, 1, "x", now=0)
    collect(net, 5)
    with pytest.raises(SimulationError):
        collect(net, 4)


def test_pending_iterates_in_arrival_order():
    net, timing, _ = make_network()
    timing.set_delivery_time(0, 9)
    net.send(0, 1, "late", now=0)
    timing.set_delivery_time(0, 1)
    net.send(0, 2, "early", now=0)
    assert [m.payload for m in net.pending()] == ["early", "late"]


# -- per-receiver in-flight accounting -------------------------------------------


def inflight_invariant(net: Network, n: int = 4) -> bool:
    """The aggregate counter is always the sum of the per-receiver ones."""
    return net.inflight_to_correct == sum(net.inflight_to(r) for r in range(n))


def test_per_receiver_counters_track_sends_and_deliveries():
    net, _, _ = make_network()
    net.send(0, 1, "a", now=0)
    net.send(0, 1, "b", now=0)
    net.send(2, 3, "c", now=0)
    assert net.inflight_to(1) == 2 and net.inflight_to(3) == 1
    assert net.inflight_to(0) == 0
    assert inflight_invariant(net)
    collect(net, 1)
    assert net.inflight_to(1) == 0 and net.inflight_to(3) == 0
    assert inflight_invariant(net)


def test_crash_mid_flight_settles_only_the_victim():
    net, _, _ = make_network()
    net.send(0, 1, "to-victim", now=0)
    net.send(0, 1, "to-victim-too", now=0)
    net.send(0, 3, "to-survivor", now=0)
    net.on_crash(1)
    assert net.inflight_to(1) == 0
    assert net.inflight_to(3) == 1
    assert net.inflight_to_correct == 1
    assert inflight_invariant(net)
    # Arrival step: the victim's messages drop without re-discounting,
    # the survivor's delivers; nothing goes negative.
    delivered = collect(net, 1)
    assert [m.payload for m in delivered] == ["to-survivor"]
    assert net.inflight_to_correct == 0
    assert inflight_invariant(net)


def test_send_to_already_crashed_receiver_is_never_counted():
    net, _, _ = make_network()
    net.on_crash(1)
    net.send(0, 1, "dead-letter", now=0)
    assert net.inflight_to(1) == 0
    assert net.inflight_to_correct == 0
    collect(net, 1)  # the drop must not drive counters negative
    assert net.inflight_to_correct == 0
    assert inflight_invariant(net)


def test_inflight_invariant_under_random_crash_interleavings():
    import random

    rng = random.Random(7)
    net, timing, _ = make_network(8)
    alive = set(range(8))
    now = 0
    for _ in range(300):
        action = rng.random()
        if action < 0.6:
            sender = rng.randrange(8)
            receiver = rng.choice([p for p in range(8) if p != sender])
            timing.set_delivery_time(sender, rng.randint(1, 5))
            net.send(sender, receiver, "x", now=now)
        elif action < 0.8 and len(alive) > 1:
            victim = rng.choice(sorted(alive))
            alive.discard(victim)
            net.on_crash(victim)
        else:
            step = net.next_arrival_step()
            if step is not None:
                now = max(now, step)
                collect(net, now)
        assert inflight_invariant(net, 8)
        assert all(net.inflight_to(r) == 0 for r in range(8) if r not in alive)
