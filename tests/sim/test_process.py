"""Unit tests for process lifecycle bookkeeping."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import ProcessRuntime, ProcessStatus


def test_initial_state():
    rt = ProcessRuntime(3)
    assert rt.pid == 3
    assert rt.status is ProcessStatus.AWAKE
    assert rt.is_correct
    assert rt.completed_at is None
    assert rt.crash_step is None


def test_sleep_records_step_and_count():
    rt = ProcessRuntime(0)
    rt.fall_asleep(12)
    assert rt.status is ProcessStatus.ASLEEP
    assert rt.last_sleep_step == 12
    assert rt.sleep_count == 1
    assert rt.completed_at == 12


def test_wake_from_sleep():
    rt = ProcessRuntime(0)
    rt.fall_asleep(12)
    rt.wake(15)
    assert rt.status is ProcessStatus.AWAKE
    assert rt.wake_count == 1
    assert rt.completed_at is None  # awake means not completed


def test_final_sleep_overwrites_earlier_sleep():
    rt = ProcessRuntime(0)
    rt.fall_asleep(10)
    rt.wake(11)
    rt.fall_asleep(20)
    assert rt.last_sleep_step == 20
    assert rt.sleep_count == 2


def test_wake_requires_sleeping():
    rt = ProcessRuntime(0)
    with pytest.raises(SimulationError):
        rt.wake(1)


def test_crash_marks_incorrect():
    rt = ProcessRuntime(0)
    rt.crash(7)
    assert rt.status is ProcessStatus.CRASHED
    assert not rt.is_correct
    assert rt.crash_step == 7


def test_crash_twice_is_an_error():
    rt = ProcessRuntime(0)
    rt.crash(1)
    with pytest.raises(SimulationError):
        rt.crash(2)


def test_crashed_cannot_sleep():
    rt = ProcessRuntime(0)
    rt.crash(1)
    with pytest.raises(SimulationError):
        rt.fall_asleep(2)


def test_note_action_counts():
    rt = ProcessRuntime(0)
    rt.note_action()
    rt.note_action()
    assert rt.action_count == 2


def test_status_enum_is_int_compatible():
    # The engine mirrors statuses in an int8 array.
    assert int(ProcessStatus.AWAKE) == 0
    assert int(ProcessStatus.ASLEEP) == 1
    assert int(ProcessStatus.CRASHED) == 2
