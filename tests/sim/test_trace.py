"""Unit tests for the trace recorder."""

from repro.sim.trace import EventKind, TraceRecorder


def test_counters_always_on():
    trace = TraceRecorder(3, record_events=False)
    trace.on_send(1, 0, 1)
    trace.on_send(2, 0, 2)
    trace.on_deliver(3, 0, 1)
    trace.on_drop(3, 0, 2)
    assert trace.sent[0] == 2
    assert trace.received[1] == 1
    assert trace.dropped[2] == 1
    assert trace.total_sent() == 2
    assert trace.events == []  # log off


def test_event_log_records_in_order():
    trace = TraceRecorder(3, record_events=True)
    trace.on_send(1, 0, 1)
    trace.on_deliver(2, 0, 1)
    trace.on_crash(2, 2)
    trace.on_sleep(3, 1)
    trace.on_wake(4, 1)
    trace.on_retime_delta(0, 0, 7)
    trace.on_retime_d(0, 0, 49)
    kinds = [e.kind for e in trace.events]
    assert kinds == [
        EventKind.SEND,
        EventKind.DELIVER,
        EventKind.CRASH,
        EventKind.SLEEP,
        EventKind.WAKE,
        EventKind.RETIME_DELTA,
        EventKind.RETIME_D,
    ]


def test_send_event_subject_is_sender_deliver_subject_is_receiver():
    trace = TraceRecorder(3, record_events=True)
    trace.on_send(5, 1, 2)
    trace.on_deliver(6, 1, 2)
    send, deliver = trace.events
    assert send.subject == 1 and send.detail == 2 and send.step == 5
    assert deliver.subject == 2 and deliver.detail == 1 and deliver.step == 6


def test_events_of_filters_by_kind():
    trace = TraceRecorder(2, record_events=True)
    trace.on_send(1, 0, 1)
    trace.on_crash(1, 1)
    trace.on_send(2, 0, 1)
    sends = list(trace.events_of(EventKind.SEND))
    assert len(sends) == 2
    assert all(e.kind is EventKind.SEND for e in sends)


def test_retime_events_carry_new_value():
    trace = TraceRecorder(2, record_events=True)
    trace.on_retime_delta(0, 1, 100)
    assert trace.events[0].detail == 100


def test_bounded_log_keeps_the_most_recent_events():
    trace = TraceRecorder(2, record_events=True, max_events=3)
    for step in range(10):
        trace.on_send(step, 0, 1)
    events = trace.events
    assert [e.step for e in events] == [7, 8, 9]  # ring: newest win
    assert trace.events_dropped == 7
    assert trace.sent[0] == 10  # counters are exact regardless


def test_bounded_log_validates_its_bound():
    import pytest

    with pytest.raises(ValueError):
        TraceRecorder(2, max_events=0)


def test_unbounded_log_drops_nothing():
    trace = TraceRecorder(2, record_events=True)
    for step in range(100):
        trace.on_send(step, 0, 1)
    assert len(trace.events) == 100
    assert trace.events_dropped == 0


def test_summary_reports_eviction_accounting():
    trace = TraceRecorder(2, record_events=True, max_events=2)
    trace.on_send(0, 0, 1)
    trace.on_send(1, 0, 1)
    trace.on_deliver(2, 0, 1)
    trace.on_omit(3, 1, 0)
    digest = trace.summary()
    assert digest["messages_sent"] == 2
    assert digest["messages_received"] == 1
    assert digest["messages_omitted"] == 1
    assert digest["events_recorded"] == 2
    assert digest["events_dropped"] == 2
    assert digest["max_events"] == 2


def test_bound_without_event_log_costs_nothing():
    trace = TraceRecorder(2, record_events=False, max_events=4)
    for step in range(10):
        trace.on_send(step, 0, 1)
    assert trace.events == []
    assert trace.events_dropped == 0  # nothing recorded, nothing evicted


def test_engine_accepts_a_trace_bound():
    from repro.core.adversary import NullAdversary
    from repro.protocols.registry import make_protocol
    from repro.sim.engine import simulate

    report = simulate(
        make_protocol("flood"),
        NullAdversary(),
        n=8,
        f=0,
        seed=0,
        record_events=True,
        max_trace_events=5,
    )
    trace = report.trace
    assert len(trace.events) == 5
    assert trace.events_dropped > 0
    assert trace.summary()["events_recorded"] == 5
