"""Unit tests for the per-process timing table."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.timing import TimingTable


def test_defaults_are_one():
    table = TimingTable(4)
    for rho in range(4):
        assert table.local_step_time(rho) == 1
        assert table.delivery_time(rho) == 1
    assert table.max_local_step_time == 1
    assert table.max_delivery_time == 1


def test_set_local_step_time():
    table = TimingTable(4)
    table.set_local_step_time(2, 9)
    assert table.local_step_time(2) == 9
    assert table.local_step_time(1) == 1


def test_set_delivery_time():
    table = TimingTable(4)
    table.set_delivery_time(0, 81)
    assert table.delivery_time(0) == 81


def test_maxima_track_history_not_current_values():
    # Definition II.4 normalises by the maxima *during* the outcome:
    # lowering a value later must not lower the recorded maximum.
    table = TimingTable(3)
    table.set_local_step_time(1, 50)
    table.set_local_step_time(1, 2)
    assert table.local_step_time(1) == 2
    assert table.max_local_step_time == 50
    table.set_delivery_time(2, 7)
    table.set_delivery_time(2, 1)
    assert table.max_delivery_time == 7


def test_rejects_non_positive_values():
    table = TimingTable(2)
    with pytest.raises(ConfigurationError):
        table.set_local_step_time(0, 0)
    with pytest.raises(ConfigurationError):
        table.set_delivery_time(0, -1)


def test_rejects_empty_system():
    with pytest.raises(ConfigurationError):
        TimingTable(0)


def test_rejects_bad_initial_values():
    with pytest.raises(ConfigurationError):
        TimingTable(2, delta=0)
    with pytest.raises(ConfigurationError):
        TimingTable(2, d=0)


def test_snapshot_is_a_copy():
    table = TimingTable(3)
    delta, d = table.snapshot()
    delta[0] = 99
    assert table.local_step_time(0) == 1
    assert d.shape == (3,)
