"""Unit tests for the global step clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import GlobalClock


def test_starts_at_zero():
    assert GlobalClock().now == 0


def test_advance_increments():
    clock = GlobalClock()
    assert clock.advance() == 1
    assert clock.advance() == 2
    assert clock.now == 2


def test_advance_to_jumps_forward():
    clock = GlobalClock()
    assert clock.advance_to(17) == 17
    assert clock.now == 17


def test_advance_to_rejects_backward_jump():
    clock = GlobalClock()
    clock.advance_to(5)
    with pytest.raises(SimulationError):
        clock.advance_to(3)


def test_advance_to_rejects_same_step():
    clock = GlobalClock()
    clock.advance_to(5)
    with pytest.raises(SimulationError):
        clock.advance_to(5)


def test_require_passes_on_current_step():
    clock = GlobalClock()
    clock.advance()
    clock.require(1)  # no raise


def test_require_raises_on_mismatch():
    clock = GlobalClock()
    with pytest.raises(SimulationError):
        clock.require(1)
