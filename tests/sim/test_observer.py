"""Unit tests for the adversary's SystemView."""

import numpy as np

from repro.core.adversary import Adversary, NullAdversary
from repro.protocols.registry import make_protocol
from repro.sim.engine import Simulator


def make_sim(n=6, f=2):
    # sanitize="off" even under REPRO_SANITIZE: these tests poke the
    # control handles directly (no adversary behind them), which the
    # legality monitor would rightly flag as outside NullAdversary's
    # declared (empty) group.
    return Simulator(
        make_protocol("round-robin"), NullAdversary(), n=n, f=f, seed=0,
        sanitize="off",
    )


def test_dimensions_and_clock():
    sim = make_sim()
    view = sim.view
    assert view.n == 6
    assert view.f == 2
    assert view.now == 0


def test_status_masks_before_run():
    view = make_sim().view
    assert view.correct_mask.all()
    assert not view.asleep_mask.any()
    assert view.crashed_count == 0


def test_crash_reflected_in_view():
    sim = make_sim()
    sim.controls.crash(3)
    view = sim.view
    assert not view.is_correct(3)
    assert view.is_correct(2)
    assert view.crashed_count == 1
    assert view.correct_mask.sum() == 5


def test_timing_accessors():
    sim = make_sim()
    sim.controls.set_local_step_time(1, 4)
    sim.controls.set_delivery_time(1, 9)
    assert sim.view.local_step_time(1) == 4
    assert sim.view.delivery_time(1) == 9
    assert sim.view.local_step_time(0) == 1


def test_sent_counts_is_a_copy():
    sim = make_sim()
    counts = sim.view.sent_counts
    counts[0] = 999
    assert sim.trace.sent[0] == 0


def test_knowledge_exposed_to_adversary():
    sim = make_sim()
    known = sim.view.knowledge_of(2)
    assert known.dtype == bool
    assert known[2] and known.sum() == 1  # only its own gossip initially


def test_sends_this_step_visible_in_after_step():
    seen = []

    class Spy(Adversary):
        name = "spy"

        def setup(self, view, controls):
            pass

        def after_step(self, view, controls):
            seen.extend((m.sender, m.receiver) for m in view.sends_this_step)

    sim = Simulator(make_protocol("flood"), Spy(), n=3, f=0, seed=0)
    sim.run()
    # Flood: every process sends to both others at its first step.
    assert set(seen) == {(a, b) for a in range(3) for b in range(3) if a != b}
