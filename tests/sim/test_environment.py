"""Tests for baseline timing environments."""

import numpy as np
import pytest

from repro.core.adversary import NullAdversary
from repro.errors import ConfigurationError
from repro.protocols.registry import make_protocol
from repro.sim.engine import Simulator, simulate
from repro.sim.environment import UniformTimingJitter, homogeneous, make_environment
from repro.sim.timing import TimingTable


def test_homogeneous_is_identity():
    table = TimingTable(5)
    homogeneous().apply(table, np.random.default_rng(0))
    assert table.max_local_step_time == 1
    assert table.max_delivery_time == 1


def test_jitter_sets_values_in_range():
    table = TimingTable(50)
    UniformTimingJitter(max_delta=4, max_d=6).apply(table, np.random.default_rng(1))
    deltas, ds = table.snapshot()
    assert deltas.min() >= 1 and deltas.max() <= 4
    assert ds.min() >= 1 and ds.max() <= 6
    # With 50 draws the jitter is virtually never degenerate.
    assert len(set(deltas.tolist())) > 1


def test_jitter_validation():
    with pytest.raises(ConfigurationError):
        UniformTimingJitter(max_delta=0)
    with pytest.raises(ConfigurationError):
        UniformTimingJitter(max_d=0)


def test_make_environment_specs():
    assert make_environment(None).__class__.__name__ == "_Homogeneous"
    assert make_environment("homogeneous").__class__.__name__ == "_Homogeneous"
    env = make_environment("jitter")
    assert isinstance(env, UniformTimingJitter)
    env = make_environment("jitter:5,7")
    assert env.max_delta == 5 and env.max_d == 7
    custom = UniformTimingJitter(2, 2)
    assert make_environment(custom) is custom
    with pytest.raises(ConfigurationError):
        make_environment("chaos")
    with pytest.raises(ConfigurationError):
        make_environment("jitter:a,b")


def test_simulator_applies_environment_before_run():
    sim = Simulator(
        make_protocol("flood"),
        NullAdversary(),
        n=20,
        f=0,
        seed=3,
        environment="jitter:3,3",
    )
    deltas, ds = sim.timing.snapshot()
    assert deltas.max() > 1 or ds.max() > 1


def test_jittered_run_completes_and_gathers():
    outcome = simulate(
        make_protocol("push-pull"),
        NullAdversary(),
        n=30,
        f=9,
        seed=4,
        environment="jitter:3,4",
    ).outcome
    assert outcome.completed
    assert outcome.rumor_gathering_ok
    # The normaliser picked up the jittered maxima.
    assert outcome.max_local_step_time >= 2 or outcome.max_delivery_time >= 2


def test_environment_deterministic_per_seed():
    def snap(seed):
        sim = Simulator(
            make_protocol("flood"),
            NullAdversary(),
            n=16,
            f=0,
            seed=seed,
            environment="jitter:4,4",
        )
        return sim.timing.snapshot()

    (d1, t1), (d2, t2) = snap(9), snap(9)
    assert np.array_equal(d1, d2) and np.array_equal(t1, t2)
    (d3, _), _ = snap(10), None
    assert not np.array_equal(d1, d3)


def test_environment_independent_of_protocol_coins():
    # The environment draws from its own stream: protocols behave the
    # same whether or not their own RNG consumption changes.
    a = Simulator(
        make_protocol("flood"), NullAdversary(), n=12, f=0, seed=5,
        environment="jitter:3,3",
    )
    b = Simulator(
        make_protocol("ears"), NullAdversary(), n=12, f=0, seed=5,
        environment="jitter:3,3",
    )
    assert np.array_equal(a.timing.snapshot()[0], b.timing.snapshot()[0])
