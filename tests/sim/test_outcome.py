"""Unit tests for the Outcome record and complexity measures."""

import numpy as np
import pytest

from repro.errors import IncompleteRunError
from repro.sim.outcome import Outcome


def make_outcome(**overrides) -> Outcome:
    base = dict(
        n=4,
        f=2,
        seed=0,
        protocol_name="p",
        adversary_name="a",
        completed=True,
        rumor_gathering_ok=True,
        t_end=30,
        max_local_step_time=2,
        max_delivery_time=3,
        sent=np.array([5, 0, 7, 1]),
        received=np.array([1, 2, 3, 4]),
        bytes_sent=np.array([50, 0, 70, 10]),
        crashed=(1,),
        crash_steps={1: 0},
        sleep_counts=np.array([1, 0, 1, 1]),
        wake_counts=np.array([0, 0, 0, 0]),
        steps_simulated=12,
    )
    base.update(overrides)
    return Outcome(**base)


def test_message_complexity_sums_all_processes():
    # Definition II.3: crashed processes' sends count too.
    assert make_outcome().message_complexity() == 13


def test_per_process_message_complexity():
    o = make_outcome()
    assert o.message_complexity_of(2) == 7
    assert o.message_complexity_of(1) == 0


def test_time_complexity_normalisation():
    # T(O) = T_end / (delta + d) = 30 / 5.
    assert make_outcome().time_complexity() == 6.0


def test_truncated_run_guards_measures():
    o = make_outcome(completed=False)
    with pytest.raises(IncompleteRunError):
        o.message_complexity()
    with pytest.raises(IncompleteRunError):
        o.time_complexity()
    with pytest.raises(IncompleteRunError):
        o.message_complexity_of(0)
    assert o.message_complexity(allow_truncated=True) == 13


def test_correct_excludes_crashed():
    assert make_outcome().correct.tolist() == [0, 2, 3]


def test_crash_count():
    assert make_outcome().crash_count == 1
    assert make_outcome(crashed=(), crash_steps={}).crash_count == 0


def test_bandwidth_sums_bytes():
    o = make_outcome()
    assert o.bandwidth() == 130
    with pytest.raises(IncompleteRunError):
        make_outcome(completed=False).bandwidth()


def test_summary_mentions_truncation():
    assert "TRUNCATED" in make_outcome(completed=False).summary()
    assert "M=13" in make_outcome().summary()


# -- wire format -----------------------------------------------------------------


def test_wire_round_trip_preserves_every_field():
    outcome = make_outcome(
        strategy_label="str-2.1.0",
        sanitizer={"mode": "warn", "total_violations": 0},
    )
    back = Outcome.from_wire(outcome.to_wire())
    assert back.to_dict() == outcome.to_dict()
    assert back.crash_steps == outcome.crash_steps


def test_wire_survives_json_byte_identically():
    import json

    outcome = make_outcome()
    wire = outcome.to_wire()
    decoded = json.loads(json.dumps(wire))
    assert decoded == wire
    assert Outcome.from_wire(decoded).to_dict() == outcome.to_dict()


def test_wire_rejects_unknown_versions():
    wire = make_outcome().to_wire()
    wire[0] = 999
    with pytest.raises(ValueError, match="wire version"):
        Outcome.from_wire(wire)
    with pytest.raises(ValueError, match="wire version"):
        Outcome.from_wire([])


def test_wire_and_dict_agree():
    outcome = make_outcome()
    assert Outcome.from_wire(outcome.to_wire()).to_dict() == outcome.to_dict()
    assert Outcome.from_dict(outcome.to_dict()).to_wire() == outcome.to_wire()
