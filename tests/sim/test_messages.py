"""Unit tests for the Message record."""

import dataclasses

import pytest

from repro.sim.messages import Message


def test_latency():
    msg = Message(sender=0, receiver=1, payload="x", sent_at=3, arrives_at=10)
    assert msg.latency() == 7


def test_frozen():
    msg = Message(sender=0, receiver=1, payload="x", sent_at=0, arrives_at=1)
    with pytest.raises(dataclasses.FrozenInstanceError):
        msg.sender = 2


def test_fields_round_trip():
    msg = Message(sender=4, receiver=2, payload=[1, 2], sent_at=5, arrives_at=6)
    assert msg.sender == 4
    assert msg.receiver == 2
    assert msg.payload == [1, 2]
    assert msg.sent_at == 5
    assert msg.arrives_at == 6
