"""Property battery for the topology abstraction (docs/TOPOLOGY.md).

Three families of guarantees:

- **construction** — specs parse to the declared graph family, builds
  are deterministic per seed, and the structural invariants hold
  (degree, symmetry, no self-loops, ring connectivity);
- **clique neutrality** — ``None`` and every spelling of the complete
  graph canonicalise to the same thing, and a clique run is
  byte-identical (outcome wire) to a run that never heard of topology;
- **contact legality** — for every protocol × {ring, random-regular,
  dynamic} cell, every message the engine records crossed an edge the
  topology declares at the decision step, and the kernel's blocked-
  contact counter stays at zero (topology-aware protocols never even
  try an illegal contact).
"""

import json

import numpy as np
import pytest

from repro.core.registry import make_adversary
from repro.errors import ConfigurationError
from repro.protocols.registry import available_protocols, make_protocol
from repro.sim.engine import simulate
from repro.sim.rng import RandomSource
from repro.sim.topology import (
    CompleteTopology,
    DynamicTopology,
    RingTopology,
    canonical_topology,
    make_topology,
)
from repro.sim.trace import EventKind


def build(spec, n, seed=0):
    topo = make_topology(spec)
    topo.bind(n, RandomSource(seed).stream("topology"))
    return topo


# -- parsing and canonicalisation ---------------------------------------------


def test_none_and_complete_spellings_canonicalise_to_none():
    assert canonical_topology(None) is None
    assert canonical_topology("complete") is None


def test_non_clique_specs_canonicalise_to_themselves():
    assert canonical_topology("ring:2") == "ring:2"
    assert canonical_topology("ring") == "ring:1"
    assert canonical_topology("dynamic:ring:1:0.1") == "dynamic:ring:1:0.1"


@pytest.mark.parametrize(
    "bad",
    [
        "ring:0",
        "random-regular",
        "random-regular:0",
        "expander:3",
        "dynamic:complete:0.1",
        "dynamic:ring:1:1.5",
        "dynamic:0.5",
        "mobius",
    ],
)
def test_malformed_specs_rejected(bad):
    with pytest.raises(ConfigurationError):
        make_topology(bad)


def test_non_string_spec_rejected():
    with pytest.raises(ConfigurationError):
        make_topology(3)


# -- structural invariants ----------------------------------------------------


def _assert_symmetric_no_self_loops(topo):
    n = topo.n
    for u in range(n):
        nbrs = topo.neighbors(u)
        assert u not in nbrs
        assert sorted(set(nbrs.tolist())) == sorted(nbrs.tolist())
        for v in nbrs:
            assert u in topo.neighbors(int(v)), (u, v)
            assert topo.allows(u, int(v)) and topo.allows(int(v), u)


@pytest.mark.parametrize("spec", ["ring:1", "ring:3", "random-regular:4", "expander"])
def test_static_graphs_are_symmetric_without_self_loops(spec):
    _assert_symmetric_no_self_loops(build(spec, 12, seed=3))


def test_ring_degree_and_connectivity():
    n = 16
    topo = build("ring:2", n)
    for u in range(n):
        assert topo.neighbors(u).size == 4
        assert set(topo.neighbors(u).tolist()) == {
            (u - 2) % n, (u - 1) % n, (u + 1) % n, (u + 2) % n
        }
    # Connectivity: BFS from 0 reaches everyone.
    seen, frontier = {0}, [0]
    while frontier:
        u = frontier.pop()
        for v in topo.neighbors(u):
            if int(v) not in seen:
                seen.add(int(v))
                frontier.append(int(v))
    assert len(seen) == n


def test_oversized_ring_clamps_to_the_clique_edge_set():
    n = 8
    topo = build("ring:32", n)
    assert not topo.is_complete  # spec identity survives the clamp
    for u in range(n):
        assert set(topo.neighbors(u).tolist()) == set(range(n)) - {u}


def test_random_regular_degree_invariant():
    for seed in range(5):
        topo = build("random-regular:3", 10, seed=seed)
        assert all(topo.neighbors(u).size == 3 for u in range(10))


def test_random_regular_validates_parity_and_degree():
    with pytest.raises(ConfigurationError):
        build("random-regular:3", 9)  # n*d odd
    with pytest.raises(ConfigurationError):
        build("random-regular:12", 10)  # d >= n


def test_complete_topology_allows_everyone():
    topo = build("complete", 6)
    assert isinstance(topo, CompleteTopology) and topo.is_complete
    for u in range(6):
        assert set(topo.neighbors(u).tolist()) == set(range(6)) - {u}
        assert not topo.allows(u, u)


# -- determinism --------------------------------------------------------------


@pytest.mark.parametrize(
    "spec", ["ring:2", "random-regular:4", "expander", "dynamic:ring:2:0.3"]
)
def test_construction_is_deterministic_per_seed(spec):
    a = build(spec, 12, seed=7)
    b = build(spec, 12, seed=7)
    for step in (0, 1, 5, 99):
        assert a.edges(step) == b.edges(step)


def test_random_regular_seed_changes_the_graph():
    edge_sets = {tuple(build("random-regular:4", 14, seed=s).edges()) for s in range(6)}
    assert len(edge_sets) > 1


def test_dynamic_rate_zero_is_the_base_graph_forever():
    topo = build("dynamic:ring:2:0", 12, seed=1)
    base = build("ring:2", 12, seed=1)
    for step in (0, 3, 50):
        assert topo.edges(step) == base.edges(0)


def test_dynamic_rewiring_is_oblivious_and_fast_forward_safe():
    """The step-t graph is a pure function of (seed, t): querying step
    50 cold gives the same graph as querying steps 0..50 in order."""
    a = build("dynamic:ring:2:0.5", 12, seed=9)
    b = build("dynamic:ring:2:0.5", 12, seed=9)
    for step in range(51):
        a.edges(step)  # walk a forward
    assert a.edges(50) == b.edges(50)  # b jumps straight there


def test_dynamic_actually_rewires():
    topo = build("dynamic:ring:1:0.9", 16, seed=2)
    assert isinstance(topo, DynamicTopology)
    base = topo.edges(0) if topo.edges(0) else None
    assert any(topo.edges(step) != topo.edges(0) for step in range(1, 10))


def test_dynamic_rejects_nesting_and_complete_base():
    with pytest.raises(ConfigurationError):
        make_topology("dynamic:complete:0.5")
    with pytest.raises(ConfigurationError):
        DynamicTopology(DynamicTopology(RingTopology(1), 0.1), 0.1)


def test_bind_requires_two_processes():
    with pytest.raises(ConfigurationError):
        build("ring:1", 1)


# -- clique neutrality end to end ---------------------------------------------


def _run(topology, **kw):
    rep = simulate(
        make_protocol(kw.pop("protocol", "push-pull")),
        make_adversary(kw.pop("adversary", "ugf")),
        n=kw.pop("n", 12),
        f=kw.pop("f", 3),
        seed=kw.pop("seed", 4),
        topology=topology,
        **kw,
    )
    return rep


def test_complete_spec_runs_byte_identical_to_no_topology():
    for proto in ("push-pull", "ears", "sears"):
        plain = _run(None, protocol=proto).outcome
        spelled = _run("complete", protocol=proto).outcome
        assert json.dumps(plain.to_wire()) == json.dumps(spelled.to_wire())
        assert len(plain.to_wire()) == 21  # no trailing topology element


def test_topology_rides_the_outcome_and_its_wire():
    out = _run("ring:3").outcome
    assert out.topology == "ring:3"
    wire = out.to_wire()
    assert len(wire) == 22 and wire[21] == "ring:3"
    from repro.sim.outcome import Outcome

    assert Outcome.from_wire(wire).topology == "ring:3"
    assert Outcome.from_dict(out.to_dict()).topology == "ring:3"


def test_topology_stream_is_independent_of_protocol_randomness():
    """Binding a topology must not perturb the protocol's draws: the
    engine's RNG streams are independent by label."""
    src_a = RandomSource(123).stream("protocol")
    src_b = RandomSource(123).stream("protocol")
    RandomSource(123).stream("topology").integers(1 << 30, size=100)
    assert np.array_equal(src_a.integers(1 << 30, size=8), src_b.integers(1 << 30, size=8))


# -- contact legality: every message crosses a declared edge ------------------

TOPOLOGIES = ["ring:2", "random-regular:4", "dynamic:ring:2:0.2"]


@pytest.mark.parametrize("proto", sorted(available_protocols()))
@pytest.mark.parametrize("spec", TOPOLOGIES)
def test_every_send_crosses_a_declared_edge(proto, spec):
    n, f, seed = 12, 3, 6
    rep = simulate(
        make_protocol(proto),
        make_adversary("none"),
        n=n,
        f=f,
        seed=seed,
        topology=spec,
        record_events=True,
        max_steps=200_000,
    )
    # Shadow rebuild of the exact graph the engine used.
    topo = build(spec, n, seed=seed)
    sends = [e for e in rep.trace.events if e.kind is EventKind.SEND]
    assert sends, "protocol sent nothing — vacuous property"
    for event in sends:
        # With adversary 'none' every delta_rho is 1, so the decision
        # step is the emission step minus one.
        decided = event.step - 1
        assert topo.allows(event.subject, event.detail, decided), (
            proto, spec, event,
        )


@pytest.mark.parametrize("spec", TOPOLOGIES)
def test_topology_aware_protocols_never_hit_the_kernel_block(spec):
    from repro.sim.engine import Simulator

    for proto in ("push-pull", "ears", "flood"):
        sim = Simulator(
            make_protocol(proto),
            make_adversary("none"),
            n=10,
            f=3,
            seed=1,
            topology=spec,
            max_steps=200_000,
        )
        sim.run()
        assert sim.network.blocked_contacts == 0, proto
