"""End-to-end property-based tests (hypothesis).

Random (protocol, adversary, N, F, seed) configurations must uphold
the kernel's invariants: message accounting, crash budgets, completion
bookkeeping and the model's definitions.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.registry import make_adversary
from repro.protocols.registry import make_protocol
from repro.sim.engine import Simulator
from repro.sim.process import ProcessStatus
from repro.sim.trace import EventKind

PROTOCOLS = [
    "push-pull",
    "ears",
    "round-robin",
    "flood",
    "push",
    "pull",
    "recursive-doubling",
    "coordinator",
]
ADVERSARIES = ["none", "ugf", "str-1", "str-2.1.0", "str-2.1.1", "oblivious"]

config = st.fixed_dictionaries(
    {
        "protocol": st.sampled_from(PROTOCOLS),
        "adversary": st.sampled_from(ADVERSARIES),
        "n": st.integers(2, 36),
        "f_frac": st.floats(0.0, 0.5),
        "seed": st.integers(0, 2**31 - 1),
        "environment": st.sampled_from([None, "jitter:2,2", "jitter:3,4"]),
    }
)


def build(cfg, record_events=False):
    n = cfg["n"]
    f = min(n - 1, int(cfg["f_frac"] * n))
    sim = Simulator(
        make_protocol(cfg["protocol"]),
        make_adversary(cfg["adversary"]),
        n=n,
        f=f,
        seed=cfg["seed"],
        max_steps=200_000,
        record_events=record_events,
        environment=cfg.get("environment"),
    )
    return sim, n, f


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(cfg=config)
def test_property_message_accounting(cfg):
    """M(O) equals the trace's send count; receives+drops never exceed sends."""
    sim, n, f = build(cfg)
    outcome = sim.run()
    assert outcome.message_complexity(allow_truncated=True) == sim.trace.total_sent()
    assert (
        sim.trace.received.sum() + sim.trace.dropped.sum() <= sim.trace.sent.sum()
    )
    assert (outcome.sent >= 0).all()


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(cfg=config)
def test_property_crash_budget_never_exceeded(cfg):
    sim, n, f = build(cfg)
    outcome = sim.run()
    assert outcome.crash_count <= f
    # Crashed processes stop acting: no sends after their crash step.
    for rho in outcome.crashed:
        assert sim.runtimes[rho].crash_step is not None


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(cfg=config)
def test_property_completed_runs_are_quiescent_and_timed(cfg):
    sim, n, f = build(cfg)
    outcome = sim.run()
    if not outcome.completed:
        return
    # At quiescence every correct process is asleep and T_end is the
    # max of their final sleeps.
    finals = []
    for rho in range(n):
        rt = sim.runtimes[rho]
        if rt.is_correct:
            assert rt.status is ProcessStatus.ASLEEP
            finals.append(rt.last_sleep_step)
    assert outcome.t_end == max(finals)
    assert (
        outcome.time_complexity()
        == outcome.t_end / (outcome.max_local_step_time + outcome.max_delivery_time)
    )


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(cfg=config)
def test_property_event_trace_consistent_with_counters(cfg):
    sim, n, f = build(cfg, record_events=True)
    outcome = sim.run()
    events = sim.trace.events
    sends = sum(1 for e in events if e.kind is EventKind.SEND)
    delivers = sum(1 for e in events if e.kind is EventKind.DELIVER)
    assert sends == sim.trace.sent.sum()
    assert delivers == sim.trace.received.sum()
    crash_events = [e for e in events if e.kind is EventKind.CRASH]
    assert len(crash_events) == outcome.crash_count
    # Sleep/wake alternate per process and end with a sleep when correct.
    for rho in range(n):
        per = [e.kind for e in events if e.subject == rho and e.kind in (EventKind.SLEEP, EventKind.WAKE)]
        for first, second in zip(per, per[1:]):
            assert first != second  # strict alternation


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(cfg=config)
def test_property_deliveries_respect_latency(cfg):
    sim, n, f = build(cfg, record_events=True)
    sim.run()
    sent_at = {}
    for e in sim.trace.events:
        if e.kind is EventKind.SEND:
            sent_at.setdefault((e.subject, e.detail), []).append(e.step)
        elif e.kind is EventKind.DELIVER:
            # delivery step strictly after (send was stamped at local
            # step end, arrival adds d >= 1)
            sends = sent_at.get((e.detail, e.subject), [])
            assert sends and min(sends) < e.step


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(cfg=config)
def test_property_determinism(cfg):
    sim_a, _, _ = build(cfg)
    sim_b, _, _ = build(cfg)
    a, b = sim_a.run(), sim_b.run()
    assert a.t_end == b.t_end
    assert a.sent.tolist() == b.sent.tolist()
    assert a.crashed == b.crashed


from hypothesis import assume


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(cfg=config)
def test_property_gathering_for_guaranteed_protocols(cfg):
    # Only protocols that guarantee gathering deterministically.
    assume(make_protocol(cfg["protocol"]).guarantees_gathering)
    sim, n, f = build(cfg)
    outcome = sim.run()
    if outcome.completed:
        assert outcome.rumor_gathering_ok, (
            cfg,
            outcome.summary(),
        )


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(cfg=config)
def test_property_knowledge_monotone_and_self_aware(cfg):
    sim, n, f = build(cfg)
    outcome = sim.run()
    for rho in range(n):
        known = sim.protocol.knowledge_of(rho)
        assert known.dtype == bool and known.shape == (n,)
        assert known[rho]  # a process always holds its own gossip
