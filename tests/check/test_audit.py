"""Offline cache auditing: replay, content addresses, Theorem 1 cells."""

import json

import numpy as np
import pytest

from repro.campaign import Campaign
from repro.check.audit import audit_cache, spec_from_fingerprint
from repro.check.theorem import audit_theorem1, theorem_table
from repro.errors import CampaignError
from repro.experiments.config import SweepSpec, TrialSpec
from repro.sim.outcome import Outcome


SWEEP = SweepSpec(
    protocol="flood", adversary="ugf", n_values=(8,), f_of_n=0.3, seeds=(0, 1)
)


@pytest.fixture
def cache(tmp_path):
    with Campaign(cache_dir=tmp_path, workers=1) as campaign:
        campaign.run_sweep(SWEEP)
    return tmp_path


def _lines(cache):
    path = cache / "trials.jsonl"
    return path, path.read_text().splitlines()


def test_clean_cache_audits_ok(cache):
    audit = audit_cache(cache)
    assert audit.ok
    assert audit.counts == {"ok": SWEEP.n_trials}
    assert audit.replayed
    assert len(audit.theorem) == 1
    cell = audit.theorem[0]
    assert cell.adversary == "ugf" and cell.completed == SWEEP.n_trials
    assert cell.verdict in ("ok-time", "ok-messages")
    assert "ok=2" in audit.summary()


def test_structural_audit_skips_replay(cache):
    audit = audit_cache(cache, replay=False)
    assert audit.ok and not audit.replayed


def test_fingerprints_rebuild_the_spec(cache):
    _, lines = _lines(cache)
    spec = spec_from_fingerprint(json.loads(lines[0])["spec"])
    assert isinstance(spec, TrialSpec)
    assert (spec.protocol, spec.adversary, spec.n, spec.f) == ("flood", "ugf", 8, 2)
    with pytest.raises(CampaignError, match="version"):
        spec_from_fingerprint({"version": -1})


def test_tampered_outcome_is_a_mismatch(cache):
    from dataclasses import replace

    path, lines = _lines(cache)
    record = json.loads(lines[0])
    outcome = Outcome.from_wire(record["wire"])
    record["wire"] = replace(outcome, t_end=outcome.t_end + 1).to_wire()
    lines[0] = json.dumps(record, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")
    audit = audit_cache(cache)
    assert not audit.ok
    assert audit.counts == {"mismatch": 1, "ok": SWEEP.n_trials - 1}
    bad = next(r for r in audit.records if r.status == "mismatch")
    assert "t_end" in bad.detail


def test_legacy_dict_records_still_audit_ok(cache):
    # PR-1 caches stored the outcome as a field dict under "outcome";
    # they must keep auditing cleanly next to wire records.
    path, lines = _lines(cache)
    record = json.loads(lines[0])
    record["outcome"] = Outcome.from_wire(record.pop("wire")).to_dict()
    lines[0] = json.dumps(record, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")
    audit = audit_cache(cache)
    assert audit.ok
    assert audit.counts == {"ok": SWEEP.n_trials}


def test_tampered_key_is_caught(cache):
    path, lines = _lines(cache)
    record = json.loads(lines[1])
    record["key"] = "0" * len(record["key"])
    lines[1] = json.dumps(record, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")
    audit = audit_cache(cache, replay=False)
    assert audit.counts.get("bad-key") == 1


def test_garbage_lines_are_unreadable_not_fatal(cache):
    path, lines = _lines(cache)
    lines.append('{"key": "truncated-by-a-cra')
    path.write_text("\n".join(lines) + "\n")
    audit = audit_cache(cache, replay=False)
    assert audit.counts == {"ok": SWEEP.n_trials, "unreadable": 1}


def test_max_records_bounds_the_audit(cache):
    audit = audit_cache(cache, replay=False, max_records=1)
    assert len(audit.records) == 1


def test_progress_callback_sees_every_record(cache):
    seen = []
    audit_cache(cache, replay=False, progress=seen.append)
    assert [r.line for r in seen] == [1, 2]


def test_missing_cache_dir_is_empty_not_fatal(tmp_path):
    audit = audit_cache(tmp_path / "nope")
    assert audit.ok and audit.records == () and audit.theorem == ()


# -- the theorem classifier on synthetic outcomes --------------------------------


def _outcome(protocol="flood", adversary="ugf", n=8, f=2, t_end=400, per_sent=50,
             completed=True):
    return Outcome(
        n=n,
        f=f,
        seed=0,
        protocol_name=protocol,
        adversary_name=adversary,
        completed=completed,
        rumor_gathering_ok=True,
        t_end=t_end,
        max_local_step_time=1,
        max_delivery_time=1,
        sent=np.full(n, per_sent, dtype=np.int64),
        received=np.full(n, per_sent, dtype=np.int64),
        bytes_sent=np.full(n, per_sent, dtype=np.int64),
        crashed=(),
        crash_steps={},
        sleep_counts=np.ones(n, dtype=np.int64),
        wake_counts=np.zeros(n, dtype=np.int64),
    )


def test_cheap_ugf_cell_violates_theorem1():
    # A UGF cell whose means sit below BOTH bounds is the
    # reproduction-stopping verdict the auditor exists to raise.
    verdicts = audit_theorem1([_outcome(t_end=0, per_sent=0)])
    assert len(verdicts) == 1
    assert verdicts[0].verdict == "VIOLATES-THEOREM-1"
    assert not verdicts[0].ok


def test_non_ugf_cells_are_not_applicable():
    verdicts = audit_theorem1([_outcome(adversary="str-1", t_end=0, per_sent=0)])
    assert verdicts[0].verdict == "not-applicable"
    assert verdicts[0].ok  # context, not a failure


def test_small_f_is_outside_the_theorem():
    verdicts = audit_theorem1([_outcome(f=1, t_end=0, per_sent=0)])
    assert verdicts[0].verdict == "not-applicable"


def test_truncated_runs_yield_no_data():
    verdicts = audit_theorem1([_outcome(completed=False)])
    assert verdicts[0].verdict == "no-data"
    assert verdicts[0].ok


def test_theorem_table_renders_every_cell():
    verdicts = audit_theorem1(
        [_outcome(t_end=0, per_sent=0), _outcome(adversary="str-1")]
    )
    text = theorem_table(verdicts)
    assert "VIOLATES-THEOREM-1" in text
    assert "verdict" in text and "M bound" in text
    assert len(text.splitlines()) >= 4  # header, rule, two cells
