"""Topology-aware contact legality and the OUT-OF-MODEL verdict.

The legality monitor rebuilds the trial's contact graph independently
(spec + seed, never trusting the kernel's copy) and flags every send
whose decision-step contact crosses no declared edge. This file proves
both directions:

- **positive**: every registry protocol runs clean under ``strict``
  sanitizing on rings, random-regular graphs and dynamic rewirings;
- **negative**: a deliberately cheating protocol that ignores its
  topology is caught — ``strict`` raises at the offending step,
  ``warn`` completes and files the violation in the outcome report;
- **verdicts**: off-clique outcomes classify as ``OUT-OF-MODEL``
  (Theorem 1 speaks only about the clique), never as a spurious
  ``VIOLATES-THEOREM-1`` — including on the cache-audit replay path,
  which is where PR-9's bugfix regression lives.
"""

import numpy as np
import pytest

from repro.campaign.campaign import Campaign
from repro.check.audit import audit_cache
from repro.check.theorem import audit_theorem1, theorem_table
from repro.core.registry import make_adversary
from repro.errors import SanitizerViolation
from repro.experiments.config import TrialSpec
from repro.protocols.base import GossipProtocol, LocalStep
from repro.protocols.knowledge import GossipKnowledge
from repro.protocols.registry import available_protocols, make_protocol
from repro.sim.engine import simulate

TOPOLOGIES = ["ring:2", "random-regular:4", "dynamic:ring:2:0.2"]


class TopologyCheater(GossipProtocol):
    """Negative fixture: pushes to ``rho + 2`` regardless of topology.

    Under ``ring:1`` the offset-2 contact crosses no declared edge, so
    every send (after the first wave) is a legality violation. The
    protocol still terminates: it sleeps after a fixed send budget.
    """

    name = "topology-cheater"
    guarantees_gathering = False

    def _allocate(self) -> None:
        n = self.n
        self._knowledge = [GossipKnowledge(n, rho) for rho in range(n)]
        self._sent = np.zeros(n, dtype=np.int64)

    def on_local_step(self, ctx: LocalStep) -> bool:
        rho = ctx.rho
        kn = self._knowledge[rho]
        for msg in ctx.inbox:
            kn.merge(msg.payload)
        if self._sent[rho] >= 3:
            return True
        self._sent[rho] += 1
        ctx.send((rho + 2) % self.n, kn.snapshot())  # ignores self.topology
        return False

    def knowledge_of(self, rho):
        return self._knowledge[rho].to_bool()


def test_strict_mode_raises_on_an_undeclared_contact():
    with pytest.raises(SanitizerViolation, match="crosses no edge"):
        simulate(
            TopologyCheater(),
            make_adversary("none"),
            n=10,
            f=2,
            seed=0,
            topology="ring:1",
            sanitize="strict",
            max_steps=10_000,
        )


def test_warn_mode_completes_and_files_the_violations():
    with pytest.warns(RuntimeWarning, match="violation"):
        rep = simulate(
            TopologyCheater(),
            make_adversary("none"),
            n=10,
            f=2,
            seed=0,
            topology="ring:1",
            sanitize="warn",
            max_steps=10_000,
        )
    report = rep.outcome.sanitizer
    assert report is not None and report["total_violations"] > 0
    recorded = [v for v in report["violations"] if "crosses no edge" in v["message"]]
    assert recorded, report["violations"]
    assert all(v["monitor"] == "legality" for v in recorded)


def test_cheater_is_legal_on_the_clique():
    # The same sends are fine when every contact is declared: the
    # negative fixture isolates the *topology* check, not send hygiene.
    rep = simulate(
        TopologyCheater(),
        make_adversary("none"),
        n=10,
        f=2,
        seed=0,
        sanitize="strict",
        max_steps=10_000,
    )
    assert rep.outcome.sanitizer["total_violations"] == 0


@pytest.mark.parametrize("spec", TOPOLOGIES)
@pytest.mark.parametrize("proto", sorted(available_protocols()))
def test_every_protocol_runs_strict_clean_off_the_clique(proto, spec):
    rep = simulate(
        make_protocol(proto),
        make_adversary("ugf"),
        n=10,
        f=3,
        seed=5,
        topology=spec,
        sanitize="strict",
        max_steps=200_000,
    )
    assert rep.outcome.sanitizer["total_violations"] == 0


# -- OUT-OF-MODEL verdicts -----------------------------------------------------


def _outcomes(topology, runs=2):
    return [
        simulate(
            make_protocol("push-pull"),
            make_adversary("ugf"),
            n=10,
            f=3,
            seed=s,
            topology=topology,
        ).outcome
        for s in range(runs)
    ]


def test_ring_outcomes_classify_out_of_model_not_violates():
    verdicts = audit_theorem1(_outcomes("ring:1"))
    assert len(verdicts) == 1
    v = verdicts[0]
    assert v.verdict == "OUT-OF-MODEL"
    assert v.topology == "ring:1"
    assert v.ok  # out-of-model is not a theorem violation


def test_clique_outcomes_keep_their_clique_verdicts():
    verdicts = audit_theorem1(_outcomes(None))
    assert len(verdicts) == 1
    assert verdicts[0].topology is None
    assert verdicts[0].verdict != "OUT-OF-MODEL"


def test_mixed_cells_split_by_topology_and_render_in_the_table():
    verdicts = audit_theorem1(_outcomes(None) + _outcomes("ring:1"))
    assert [v.topology for v in verdicts] == [None, "ring:1"]
    table = theorem_table(verdicts)
    assert "topology" in table
    assert "ring:1" in table
    assert "OUT-OF-MODEL" in table


def test_cache_audit_replays_ring_trials_as_out_of_model(tmp_path):
    """PR-9 regression: a ring sweep written through the campaign cache
    must audit clean and classify OUT-OF-MODEL on replay — before the
    fix, replayed off-clique outcomes hit the clique bounds and could
    read VIOLATES-THEOREM-1."""
    specs = [
        TrialSpec(
            protocol="push-pull",
            adversary="ugf",
            n=10,
            f=3,
            seed=s,
            topology="ring:1",
        )
        for s in range(2)
    ]
    with Campaign(cache_dir=tmp_path, workers=1) as campaign:
        results = campaign.run_trials(specs)
    assert all(r.ok and r.outcome.topology == "ring:1" for r in results)

    audit = audit_cache(tmp_path, replay=True)
    assert all(r.status == "ok" for r in audit.records), [
        (r.status, r.detail) for r in audit.records
    ]
    assert audit.theorem
    assert all(v.verdict == "OUT-OF-MODEL" for v in audit.theorem)
