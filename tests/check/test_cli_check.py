"""CLI surface of the sanitizer: --sanitize flags and the check command."""

import json

import pytest

from repro.cli import main


def _sweep_args(cache, *extra):
    return [
        "sweep", "--protocol", "flood", "--adversary", "ugf",
        "--n", "8", "--seeds", "2", "--workers", "1",
        "--cache-dir", str(cache), *extra,
    ]


def test_run_with_sanitize_prints_verdict(capsys):
    code = main(
        ["run", "--protocol", "flood", "--adversary", "ugf",
         "-n", "10", "-f", "3", "--sanitize", "warn"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "sanitizer: 0 violation(s) [warn]" in out


def test_run_rejects_bad_sanitize_spec(capsys):
    with pytest.raises(SystemExit):
        main(
            ["run", "--protocol", "flood", "--adversary", "none",
             "-n", "6", "-f", "0", "--sanitize", "paranoid"]
        )


def test_sweep_strict_then_check_roundtrip(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(_sweep_args(cache, "--sanitize", "strict")) == 0
    capsys.readouterr()

    assert main(["check", str(cache)]) == 0
    out = capsys.readouterr().out
    assert "theorem" in out.lower() or "verdict" in out
    assert "ok=2" in out


def test_check_flags_a_tampered_cache(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(_sweep_args(cache)) == 0
    capsys.readouterr()

    path = cache / "trials.jsonl"
    lines = path.read_text().splitlines()
    record = json.loads(lines[0])
    record["wire"][8] += 7  # forge t_end (wire slot 8)
    lines[0] = json.dumps(record, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")

    assert main(["check", str(cache)]) == 1
    captured = capsys.readouterr()
    assert "mismatch" in captured.err or "mismatch" in captured.out


def test_check_no_replay_is_structural_only(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(_sweep_args(cache)) == 0
    capsys.readouterr()
    assert main(["check", str(cache), "--no-replay"]) == 0
    assert "ok=2" in capsys.readouterr().out


def test_check_empty_cache(tmp_path, capsys):
    assert main(["check", str(tmp_path)]) == 0
    assert "0 record(s)" in capsys.readouterr().out
