"""Sanitizer configuration, violation records and report round-trips."""

import pytest

from repro.check.config import SanitizerConfig, resolve_config
from repro.check.sanitizer import Sanitizer, build_sanitizer
from repro.check.violations import SanitizerReport, Violation
from repro.errors import ConfigurationError


def test_off_is_the_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    config = resolve_config(None)
    assert config.mode == "off"
    assert not config.enabled


def test_mode_strings_parse():
    assert resolve_config("warn").mode == "warn"
    assert resolve_config("strict").monitors == "full"
    config = resolve_config("strict:counters")
    assert config.mode == "strict"
    assert config.monitors == "counters"


def test_spec_round_trips():
    for spec in ("off", "warn", "strict", "warn:counters", "strict:counters"):
        assert resolve_config(spec).spec == spec


def test_config_objects_pass_through():
    config = SanitizerConfig(mode="warn", monitors="counters")
    assert resolve_config(config) is config


def test_bad_specs_raise():
    with pytest.raises(ConfigurationError):
        resolve_config("paranoid")
    with pytest.raises(ConfigurationError):
        resolve_config("strict:everything")
    with pytest.raises(ConfigurationError):
        resolve_config(42)  # type: ignore[arg-type]
    with pytest.raises(ConfigurationError):
        SanitizerConfig(mode="warn", max_recorded=0)


def test_environment_supplies_default(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "strict:counters")
    config = resolve_config(None)
    assert config.mode == "strict"
    assert config.monitors == "counters"
    # An explicit spec still beats the environment.
    assert resolve_config("warn").mode == "warn"


def test_build_sanitizer_off_returns_none(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert build_sanitizer(None) is None
    assert build_sanitizer("off") is None
    assert isinstance(build_sanitizer("warn"), Sanitizer)


def test_counters_preset_drops_only_the_knowledge_monitor():
    full = build_sanitizer("warn")
    counters = build_sanitizer("warn:counters")
    full_names = {m.name for m in full.monitors}
    counter_names = {m.name for m in counters.monitors}
    assert full_names - counter_names == {"knowledge"}


def test_violation_round_trip_and_str():
    v = Violation("delivery", 12, "late message", subject=3)
    assert Violation.from_dict(v.to_dict()) == v
    assert "delivery" in str(v) and "12" in str(v) and "rho=3" in str(v)
    anonymous = Violation("budget", 0, "too many crashes")
    assert "rho" not in str(anonymous)


def test_report_round_trip_and_summary():
    report = SanitizerReport(
        mode="warn",
        monitors=("delivery", "budget"),
        violations=[Violation("budget", 4, "crash #3 exceeds the budget F=2", 9)],
        total_violations=5,
        sends_checked=10,
        deliveries_checked=8,
        local_steps_checked=6,
    )
    assert not report.ok
    data = report.to_dict()
    assert data["ok"] is False
    again = SanitizerReport.from_dict(data)
    assert again.total_violations == 5
    assert again.violations == report.violations
    text = report.summary()
    assert "5 violation(s)" in text
    assert "... 4 more" in text  # total exceeds the recorded list
    clean = SanitizerReport(mode="strict", monitors=("delivery",))
    assert clean.ok and "0 violations" in clean.summary()
