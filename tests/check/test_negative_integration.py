"""Broken fixtures caught by the sanitizer in full end-to-end runs.

Each fixture violates exactly one model invariant on purpose; the test
asserts the matching monitor names it in warn mode and that strict mode
aborts the run at the violation. This is the sanitizer's negative
contract — it must catch these, not merely not-crash on them.
"""

import numpy as np
import pytest

from repro.check.sanitizer import Sanitizer
from repro.check.config import SanitizerConfig
from repro.core.adversary import Adversary, DeclaredControls, NullAdversary
from repro.errors import SanitizerViolation
from repro.protocols.base import GossipProtocol
from repro.protocols.registry import make_protocol
from repro.sim.engine import simulate


class ForgetfulFlood(GossipProtocol):
    """Flood protocol that un-learns a rumor — knowledge must be monotone."""

    name = "forgetful-flood"
    guarantees_gathering = False

    def _allocate(self):
        self.know = np.eye(self.n, dtype=bool)
        self.steps_taken = np.zeros(self.n, dtype=np.int64)

    def on_local_step(self, ctx):
        rho = ctx.rho
        before = self.know[rho].copy()
        for msg in ctx.inbox:
            self.know[rho] |= msg.payload
        self.steps_taken[rho] += 1
        sleep = bool(before.all())  # knew everything already: stop
        if not sleep:
            for other in range(self.n):
                if other != rho:
                    ctx.send(other, self.know[rho].copy())
        if rho == 0 and self.steps_taken[0] == 4:
            # The sabotage, placed at the END of the step so the
            # monitor's previous snapshot already holds the learned
            # rumors: forget everything except our own gossip.
            self.know[0] = False
            self.know[0, 0] = True
        return sleep

    def knowledge_of(self, rho):
        return self.know[rho]


class OutsideGroupRetimer(Adversary):
    """Declares control of {0} but retimes process 1."""

    name = "rogue-outside"

    def setup(self, view, controls):
        controls.set_local_step_time(1, 2)

    def declared_controls(self):
        return DeclaredControls(controlled=frozenset({0}), max_local_step_time=4)


class BoundBreakingRetimer(Adversary):
    """Declares a maximum of 2 but sets delta to 100."""

    name = "rogue-bound"

    def setup(self, view, controls):
        controls.set_local_step_time(0, 100)

    def declared_controls(self):
        return DeclaredControls(controlled=frozenset({0}), max_local_step_time=2)


class OverclockingRetimer(Adversary):
    """Sets a delivery time below 1 — illegal for ANY adversary (§II-A)."""

    name = "rogue-overclock"

    def setup(self, view, controls):
        controls.set_delivery_time(2, 0)


def _warn_report(protocol, adversary, **kw):
    kw.setdefault("n", 6)
    kw.setdefault("f", 2)
    kw.setdefault("seed", 4)
    with pytest.warns(RuntimeWarning):
        report = simulate(protocol, adversary, sanitize="warn", **kw)
    data = report.outcome.sanitizer
    assert data["ok"] is False
    return data


def _violating_monitors(data):
    return {v["monitor"] for v in data["violations"]}


def test_forgetful_protocol_caught_by_knowledge_monitor():
    data = _warn_report(ForgetfulFlood(), NullAdversary(), f=0)
    assert "knowledge" in _violating_monitors(data)
    assert any("shrank" in v["message"] for v in data["violations"])


def test_forgetful_protocol_aborts_under_strict():
    with pytest.raises(SanitizerViolation, match="shrank"):
        simulate(ForgetfulFlood(), NullAdversary(), n=6, f=0, seed=4, sanitize="strict")


def test_retiming_outside_declared_group_caught():
    data = _warn_report(make_protocol("push-pull"), OutsideGroupRetimer())
    assert "legality" in _violating_monitors(data)


def test_retiming_beyond_declared_bound_caught():
    data = _warn_report(make_protocol("push-pull"), BoundBreakingRetimer())
    assert "legality" in _violating_monitors(data)


def test_sub_unit_timing_caught_even_without_declaration():
    # The timing table itself rejects values < 1 (ConfigurationError),
    # but the sanitizer hook fires first: under strict the run dies as
    # a *sanitizer* violation, pinned to the offending adversary.
    with pytest.raises(SanitizerViolation, match="< 1"):
        simulate(
            make_protocol("push-pull"),
            OverclockingRetimer(),
            n=6,
            f=2,
            seed=4,
            sanitize="strict",
        )


def test_rogue_adversary_aborts_under_strict_at_setup():
    # The violation happens inside adversary.setup, before any local
    # step — strict mode must stop the run right there.
    with pytest.raises(SanitizerViolation):
        simulate(
            make_protocol("push-pull"),
            OutsideGroupRetimer(),
            n=6,
            f=2,
            seed=4,
            sanitize="strict",
        )


def test_counters_preset_misses_the_knowledge_bug_by_design():
    # The O(1) preset drops only the O(N)-per-step knowledge monitor;
    # this documents the tradeoff the `counters` preset makes.
    report = simulate(
        ForgetfulFlood(),
        NullAdversary(),
        n=6,
        f=0,
        seed=4,
        sanitize=Sanitizer(SanitizerConfig(mode="warn", monitors="counters")),
    )
    data = report.outcome.sanitizer
    assert "knowledge" not in data["monitors"]
    assert all(v["monitor"] != "knowledge" for v in data["violations"])
