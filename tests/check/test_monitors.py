"""Negative unit tests: each monitor trips on a synthetic bad event stream.

The engine itself never produces these streams (the property tests
assert exactly that), so the monitors are driven directly here with a
stub recorder and a minimal fake simulator — proving each check would
actually fire if the kernel ever regressed.
"""

import numpy as np
import pytest

from repro.check.monitors import (
    BudgetMonitor,
    CadenceMonitor,
    CountersMonitor,
    DeliveryMonitor,
    KnowledgeMonitor,
    LegalityMonitor,
)
from repro.core.adversary import DeclaredControls, NullAdversary
from repro.sim.messages import Message
from repro.sim.outcome import Outcome
from repro.sim.timing import TimingTable


class Recorder:
    """Stands in for the Sanitizer: collects violations, never raises."""

    def __init__(self):
        self.violations = []

    def record(self, violation):
        self.violations.append(violation)


class FakeSim:
    """The minimal surface monitors read at attach time."""

    def __init__(self, n=4, f=2, adversary=None, protocol=None):
        self.n = n
        self.f = f
        self.timing = TimingTable(n)
        self.adversary = adversary if adversary is not None else NullAdversary()
        self.protocol = protocol


def attach(monitor, **kwargs):
    sim = FakeSim(**kwargs)
    recorder = Recorder()
    monitor.bind(recorder)
    monitor.attach(sim)
    return sim, recorder


def outcome(n=4, *, completed=True, crashed=(), crash_steps=None, t_end=0, **over):
    fields = dict(
        n=n,
        f=2,
        seed=0,
        protocol_name="toy",
        adversary_name="none",
        completed=completed,
        rumor_gathering_ok=True,
        t_end=t_end,
        max_local_step_time=1,
        max_delivery_time=1,
        sent=np.zeros(n, dtype=np.int64),
        received=np.zeros(n, dtype=np.int64),
        bytes_sent=np.zeros(n, dtype=np.int64),
        crashed=tuple(crashed),
        crash_steps=crash_steps if crash_steps is not None else {},
        sleep_counts=np.zeros(n, dtype=np.int64),
        wake_counts=np.zeros(n, dtype=np.int64),
    )
    fields.update(over)
    return Outcome(**fields)


def msg(sender=0, receiver=1, sent_at=0, arrives_at=1):
    return Message(sender, receiver, None, sent_at=sent_at, arrives_at=arrives_at)


# -- delivery ---------------------------------------------------------------


def test_delivery_accepts_a_clean_exchange():
    monitor = DeliveryMonitor()
    _, rec = attach(monitor)
    m = msg()
    monitor.on_send(0, m)
    monitor.on_deliver(1, m)
    monitor.finalize(None, outcome())
    assert rec.violations == []


def test_delivery_flags_wrong_arrival_stamp():
    monitor = DeliveryMonitor()
    _, rec = attach(monitor)
    monitor.on_send(0, msg(sent_at=0, arrives_at=5))  # d_rho is 1
    assert len(rec.violations) == 1
    assert "arrive" in rec.violations[0].message


def test_delivery_flags_delivery_at_wrong_step():
    monitor = DeliveryMonitor()
    _, rec = attach(monitor)
    m = msg()
    monitor.on_send(0, m)
    monitor.on_deliver(3, m)  # arrives_at is 1
    assert any("not at its arrival step" in v.message for v in rec.violations)


def test_delivery_flags_delivery_to_crashed_receiver():
    monitor = DeliveryMonitor()
    _, rec = attach(monitor)
    m = msg()
    monitor.on_send(0, m)
    monitor.on_crash(0, 1)
    monitor.on_deliver(1, m)
    assert any("crashed process" in v.message for v in rec.violations)


def test_delivery_flags_drop_of_correct_receiver():
    monitor = DeliveryMonitor()
    _, rec = attach(monitor)
    m = msg()
    monitor.on_send(0, m)
    monitor.on_drop(1, m)
    assert any("never crashed" in v.message for v in rec.violations)


def test_delivery_flags_phantom_delivery():
    monitor = DeliveryMonitor()
    _, rec = attach(monitor)
    m = msg()
    monitor.on_deliver(1, m)  # never sent
    assert any("more messages" in v.message for v in rec.violations)


def test_delivery_flags_quiescence_with_messages_in_flight():
    monitor = DeliveryMonitor()
    _, rec = attach(monitor)
    monitor.on_send(0, msg())
    monitor.finalize(None, outcome(t_end=9))
    assert any("still in flight" in v.message for v in rec.violations)


def test_delivery_tolerates_inert_messages_to_crashed():
    monitor = DeliveryMonitor()
    _, rec = attach(monitor)
    monitor.on_send(0, msg())
    monitor.on_crash(0, 1)  # receiver crashes; message becomes inert
    monitor.finalize(None, outcome(crashed=(1,), crash_steps={1: 0}))
    assert rec.violations == []


def test_delivery_omitted_messages_are_not_pending():
    monitor = DeliveryMonitor()
    _, rec = attach(monitor)
    m = msg()
    monitor.on_send(0, m)
    monitor.on_omit(0, m)
    monitor.finalize(None, outcome())
    assert rec.violations == []


# -- cadence ----------------------------------------------------------------


def test_cadence_accepts_the_correct_rhythm():
    monitor = CadenceMonitor()
    sim, rec = attach(monitor, n=1)
    # Post-attach timing changes reach the shadow via the retime hook,
    # exactly as the engine's hook point emits them.
    monitor.on_retime_delta(0, 0, 3)
    monitor.on_local_step(0, 0, False)
    monitor.on_local_step(3, 0, True)  # falls asleep
    monitor.on_wake(7, 0)
    monitor.on_local_step(7, 0, True)
    monitor.finalize(None, outcome(n=1))
    assert rec.violations == []


def test_cadence_snapshots_environment_baselines_at_attach():
    # Environment baselines are set on the table before the sanitizer
    # attaches; the shadow must start from them, not from 1.
    monitor = CadenceMonitor()
    sim = FakeSim(n=1)
    sim.timing.set_local_step_time(0, 2)
    rec = Recorder()
    monitor.bind(rec)
    monitor.attach(sim)
    monitor.on_local_step(0, 0, False)
    monitor.on_local_step(2, 0, False)
    assert rec.violations == []


def test_cadence_flags_off_schedule_step():
    monitor = CadenceMonitor()
    _, rec = attach(monitor)
    monitor.on_local_step(0, 0, False)
    monitor.on_local_step(5, 0, False)  # due at 1
    assert any("due at 1" in v.message for v in rec.violations)


def test_cadence_flags_step_while_asleep():
    monitor = CadenceMonitor()
    _, rec = attach(monitor)
    monitor.on_local_step(0, 0, True)
    monitor.on_local_step(1, 0, False)  # never woken
    assert any("while asleep" in v.message for v in rec.violations)


def test_cadence_flags_step_after_crash():
    monitor = CadenceMonitor()
    _, rec = attach(monitor)
    monitor.on_crash(0, 2)
    monitor.on_local_step(1, 2, False)
    assert any("while crashed" in v.message for v in rec.violations)


def test_cadence_flags_wake_of_awake_process():
    monitor = CadenceMonitor()
    _, rec = attach(monitor)
    monitor.on_wake(0, 1)  # process 1 never slept
    assert any("not asleep" in v.message for v in rec.violations)


def test_cadence_flags_awake_process_at_quiescence():
    monitor = CadenceMonitor()
    _, rec = attach(monitor, n=2)
    monitor.on_local_step(0, 0, True)
    # Process 1 never slept: still due.
    monitor.finalize(None, outcome(n=2, t_end=0))
    assert any("still awake" in v.message for v in rec.violations)


# -- budget -----------------------------------------------------------------


def test_budget_flags_double_crash():
    monitor = BudgetMonitor()
    _, rec = attach(monitor, f=2)
    monitor.on_crash(0, 1)
    monitor.on_crash(1, 1)
    assert any("twice" in v.message for v in rec.violations)


def test_budget_flags_overdraw():
    monitor = BudgetMonitor()
    _, rec = attach(monitor, f=2)
    for rho in (0, 1, 2):
        monitor.on_crash(0, rho)
    assert any("exceeds the budget F=2" in v.message for v in rec.violations)
    assert len(rec.violations) == 1  # the first two crashes were legal


# -- legality ---------------------------------------------------------------


class DeclaringAdversary(NullAdversary):
    def __init__(self, declared):
        self._declared = declared

    def declared_controls(self):
        return self._declared


def test_legality_accepts_declared_retimes():
    adv = DeclaringAdversary(
        DeclaredControls(
            controlled=frozenset({1, 2}), max_local_step_time=9, max_delivery_time=27
        )
    )
    monitor = LegalityMonitor()
    _, rec = attach(monitor, adversary=adv)
    monitor.on_retime_delta(0, 1, 9)
    monitor.on_retime_d(0, 2, 27)
    assert rec.violations == []


def test_legality_flags_retime_outside_group():
    adv = DeclaringAdversary(DeclaredControls(controlled=frozenset({1})))
    monitor = LegalityMonitor()
    _, rec = attach(monitor, adversary=adv)
    monitor.on_retime_delta(0, 3, 5)
    assert any("outside the declared" in v.message for v in rec.violations)


def test_legality_flags_retime_beyond_bound():
    adv = DeclaringAdversary(
        DeclaredControls(controlled=frozenset({1}), max_delivery_time=8)
    )
    monitor = LegalityMonitor()
    _, rec = attach(monitor, adversary=adv)
    monitor.on_retime_d(0, 1, 9)
    assert any("beyond the declared bound 8" in v.message for v in rec.violations)


def test_legality_flags_sub_one_values_even_undeclared():
    monitor = LegalityMonitor()
    _, rec = attach(monitor)  # NullAdversary declares an empty group
    monitor.on_retime_delta(0, 0, 0)
    assert any("< 1" in v.message for v in rec.violations)


def test_legality_flags_oversized_declared_group():
    adv = DeclaringAdversary(DeclaredControls(controlled=frozenset({0, 1, 2})))
    monitor = LegalityMonitor()
    _, rec = attach(monitor, f=2, adversary=adv)
    monitor.on_retime_delta(0, 1, 1)
    assert any("more than F=2" in v.message for v in rec.violations)


def test_legality_skips_checks_for_undeclaring_adversaries():
    class Undeclared(NullAdversary):
        def declared_controls(self):
            return None

    monitor = LegalityMonitor()
    _, rec = attach(monitor, adversary=Undeclared())
    monitor.on_retime_delta(0, 3, 10**6)
    assert rec.violations == []


# -- knowledge --------------------------------------------------------------


class ToyProtocol:
    """knowledge_of backed by a mutable matrix the test scripts."""

    def __init__(self, n):
        self.known = np.eye(n, dtype=bool)

    def knowledge_of(self, rho):
        return self.known[rho]


def test_knowledge_flags_forgetting():
    protocol = ToyProtocol(3)
    monitor = KnowledgeMonitor()
    _, rec = attach(monitor, n=3, protocol=protocol)
    protocol.known[0, 1] = True
    monitor.on_local_step(1, 0, False)
    protocol.known[0, 1] = False  # forget
    monitor.on_local_step(2, 0, False)
    assert any("shrank" in v.message for v in rec.violations)


def test_knowledge_flags_missing_own_gossip():
    protocol = ToyProtocol(3)
    protocol.known[2, 2] = False
    monitor = KnowledgeMonitor()
    _, rec = attach(monitor, n=3, protocol=protocol)
    assert any("own gossip" in v.message for v in rec.violations)


def test_knowledge_flags_wrong_gathering_verdict():
    protocol = ToyProtocol(3)
    monitor = KnowledgeMonitor()
    _, rec = attach(monitor, n=3, protocol=protocol)
    # Nobody learned anything, yet the outcome claims gathering.
    monitor.finalize(None, outcome(n=3, rumor_gathering_ok=True))
    assert any("recomputation" in v.message for v in rec.violations)


# -- counters ---------------------------------------------------------------


def test_counters_flag_inflated_sent_counter():
    monitor = CountersMonitor()
    _, rec = attach(monitor)
    monitor.on_send(0, msg())
    doctored = outcome(sent=np.array([5, 0, 0, 0], dtype=np.int64))
    monitor.finalize(None, doctored)
    assert any("sent counters disagree" in v.message for v in rec.violations)


def test_counters_flag_wrong_t_end():
    monitor = CountersMonitor()
    _, rec = attach(monitor, n=2)
    monitor.on_local_step(4, 0, True)
    monitor.on_local_step(6, 1, True)
    sleeps = np.array([1, 1], dtype=np.int64)
    monitor.finalize(None, outcome(n=2, t_end=99, sleep_counts=sleeps))
    assert any("T_end" in v.message for v in rec.violations)


def test_counters_flag_unreported_crash():
    monitor = CountersMonitor()
    _, rec = attach(monitor)
    monitor.on_crash(3, 2)
    monitor.finalize(None, outcome(completed=False))  # outcome lists none
    assert any("stream saw" in v.message for v in rec.violations)


def test_counters_accept_a_consistent_run():
    monitor = CountersMonitor()
    _, rec = attach(monitor, n=2)
    m = msg()
    monitor.on_send(0, m)
    monitor.on_deliver(1, m)
    monitor.on_local_step(2, 0, True)
    monitor.on_local_step(3, 1, True)
    consistent = outcome(
        n=2,
        t_end=3,
        sent=np.array([1, 0], dtype=np.int64),
        received=np.array([0, 1], dtype=np.int64),
        sleep_counts=np.array([1, 1], dtype=np.int64),
    )
    monitor.finalize(None, consistent)
    assert rec.violations == []
