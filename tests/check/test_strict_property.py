"""Property: every registered protocol x adversary passes strict cleanly.

This is the sanitizer's positive contract — the engine upholds every
§II invariant the monitors encode, for every protocol and adversary in
the registries, and turning the monitors on does not perturb results.
"""

import pytest

from repro.core.registry import available_adversaries, make_adversary
from repro.protocols.registry import available_protocols, make_protocol
from repro.sim.engine import simulate

ADVERSARIES = [a for a in available_adversaries() if "<" not in a] + [
    "str-2.1.0",
    "str-2.1.1",
]


@pytest.mark.parametrize("protocol", available_protocols())
@pytest.mark.parametrize("adversary", ADVERSARIES)
def test_strict_full_monitors_pass(protocol, adversary):
    report = simulate(
        make_protocol(protocol),
        make_adversary(adversary),
        n=10,
        f=3,
        seed=11,
        max_steps=500_000,
        sanitize="strict",
    )
    data = report.outcome.sanitizer
    assert data is not None
    assert data["ok"] is True
    assert data["total_violations"] == 0
    # Evidence the monitors actually saw the run.
    assert data["local_steps_checked"] > 0


@pytest.mark.parametrize("seed", range(3))
def test_strict_with_jitter_environment(seed):
    # Environment baselines retime processes *before* the adversary
    # acts; the monitors must not mistake them for adversary retimes.
    report = simulate(
        make_protocol("push-pull"),
        make_adversary("ugf"),
        n=12,
        f=4,
        seed=seed,
        environment="jitter",
        sanitize="strict",
    )
    assert report.outcome.sanitizer["total_violations"] == 0


def test_sanitizing_does_not_perturb_the_outcome():
    def once(sanitize):
        return simulate(
            make_protocol("ears"),
            make_adversary("ugf"),
            n=14,
            f=4,
            seed=5,
            sanitize=sanitize,
        ).outcome

    plain = once(None).to_dict()
    checked = once("strict").to_dict()
    plain.pop("sanitizer")
    checked.pop("sanitizer")
    assert plain == checked
