"""Sanitizer dispatch, mode enforcement and engine integration."""

import warnings

import pytest

from repro.check.config import SanitizerConfig
from repro.check.monitors import Monitor
from repro.check.sanitizer import Sanitizer, build_sanitizer
from repro.check.violations import Violation
from repro.core.registry import make_adversary
from repro.errors import SanitizerViolation
from repro.protocols.registry import make_protocol
from repro.sim.engine import simulate


class SendCounter(Monitor):
    name = "send-counter"

    def __init__(self):
        self.seen = 0

    def on_send(self, step, msg):
        self.seen += 1


class AlwaysAngry(Monitor):
    name = "always-angry"

    def on_local_step(self, step, rho, slept):
        self.fail(step, "synthetic violation", subject=rho)


def test_dispatch_tables_contain_only_overridden_hooks():
    san = Sanitizer(SanitizerConfig(mode="warn"), extra_monitors=[SendCounter()])
    # The extra monitor overrides exactly one hook; the base-class
    # no-ops of its other hooks must not be on any dispatch table.
    assert any(fn.__self__.name == "send-counter" for fn in san._on_send)
    for hook in ("_on_deliver", "_on_local_step", "_on_crash", "_on_wake"):
        assert all(fn.__self__.name != "send-counter" for fn in getattr(san, hook))


def test_extra_monitor_receives_events():
    counter = SendCounter()
    san = Sanitizer(SanitizerConfig(mode="warn"), [counter])
    assert build_sanitizer(san) is san  # live sanitizers pass through
    report = simulate(
        make_protocol("push"),
        make_adversary("none"),
        n=6,
        f=0,
        seed=1,
        sanitize=san,
    )
    assert counter.seen > 0
    assert counter.seen == report.outcome.message_complexity()
    assert "send-counter" in report.outcome.sanitizer["monitors"]


def test_strict_raises_on_first_violation():
    san = Sanitizer(SanitizerConfig(mode="strict"))
    with pytest.raises(SanitizerViolation, match="synthetic"):
        san.record(Violation("test", 3, "synthetic violation"))
    assert san.total_violations == 1


def test_warn_collects_and_warns_at_finalize():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        report = simulate(
            make_protocol("push"),
            make_adversary("none"),
            n=4,
            f=0,
            seed=0,
            sanitize=Sanitizer(
                SanitizerConfig(mode="warn"), [AlwaysAngry()]
            ),
        )
    assert report.outcome.sanitizer["total_violations"] > 0
    assert any(issubclass(w.category, RuntimeWarning) for w in caught)


def test_max_recorded_caps_the_list_but_not_the_total():
    san = Sanitizer(SanitizerConfig(mode="warn", max_recorded=3))
    for i in range(10):
        san.record(Violation("test", i, f"violation {i}"))
    assert san.total_violations == 10
    assert len(san.violations) == 3


def test_engine_honours_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "warn:counters")
    report = simulate(
        make_protocol("push"), make_adversary("none"), n=5, f=0, seed=2
    )
    data = report.outcome.sanitizer
    assert data is not None
    assert data["mode"] == "warn"
    assert "knowledge" not in data["monitors"]

    monkeypatch.delenv("REPRO_SANITIZE")
    report = simulate(
        make_protocol("push"), make_adversary("none"), n=5, f=0, seed=2
    )
    assert report.outcome.sanitizer is None


def test_strict_angry_monitor_aborts_the_run():
    with pytest.raises(SanitizerViolation):
        simulate(
            make_protocol("push"),
            make_adversary("none"),
            n=4,
            f=0,
            seed=0,
            sanitize=Sanitizer(SanitizerConfig(mode="strict"), [AlwaysAngry()]),
        )


def test_checked_counters_tally():
    report = simulate(
        make_protocol("push-pull"),
        make_adversary("ugf"),
        n=8,
        f=2,
        seed=7,
        sanitize="warn",
    )
    data = report.outcome.sanitizer
    assert data["sends_checked"] >= data["deliveries_checked"] > 0
    assert data["local_steps_checked"] > 0
