"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "push-pull" in out
    assert "ugf" in out


def test_run_command(capsys):
    code = main(
        ["run", "--protocol", "round-robin", "--adversary", "none", "-n", "10", "-f", "0"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "M(O) = 90" in out
    assert "T(O)" in out


def test_run_with_ugf(capsys):
    assert (
        main(["run", "--protocol", "flood", "--adversary", "ugf", "-n", "12", "-f", "4"])
        == 0
    )
    assert "flood vs ugf" in capsys.readouterr().out


def test_figure_command_tiny(capsys, monkeypatch):
    import repro.experiments.figure3 as figure3

    monkeypatch.setattr(figure3, "DEFAULT_N_GRID", (8, 12))
    monkeypatch.setattr(figure3, "DEFAULT_SEEDS", (0, 1))
    assert main(["figure", "3a", "--seeds", "2", "--workers", "1"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3a" in out
    assert "Growth-model fits" in out


def test_figure_writes_csv(tmp_path, capsys, monkeypatch):
    import repro.experiments.figure3 as figure3

    monkeypatch.setattr(figure3, "DEFAULT_N_GRID", (8,))
    assert (
        main(
            [
                "figure",
                "3c",
                "--seeds",
                "2",
                "--workers",
                "1",
                "--csv",
                str(tmp_path),
            ]
        )
        == 0
    )
    files = sorted(p.name for p in tmp_path.iterdir())
    assert files == [
        "figure3c_max-ugf.csv",
        "figure3c_no-adversary.csv",
        "figure3c_ugf.csv",
    ]


def test_sweep_outputs_csv(capsys):
    assert (
        main(
            [
                "sweep",
                "--protocol",
                "flood",
                "--adversary",
                "none",
                "--n",
                "6",
                "10",
                "--seeds",
                "2",
                "--workers",
                "1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert out.startswith("protocol,")
    assert out.count("\n") == 3  # header + two N rows


def _sweep_args(*extra):
    return [
        "sweep", "--protocol", "flood", "--adversary", "none",
        "--n", "6", "10", "--seeds", "2", "--workers", "1", *extra,
    ]


def test_sweep_cache_dir_persists_and_resumes(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(_sweep_args("--cache-dir", str(cache))) == 0
    first = capsys.readouterr()
    assert "4 trials: 4 executed, 0 cached" in first.err
    assert (cache / "trials.jsonl").exists()

    assert main(_sweep_args("--cache-dir", str(cache))) == 0
    second = capsys.readouterr()
    assert "4 trials: 0 executed, 4 cached" in second.err
    assert second.out == first.out


def test_sweep_fresh_ignores_cache_reads(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(_sweep_args("--cache-dir", str(cache))) == 0
    capsys.readouterr()
    assert main(_sweep_args("--cache-dir", str(cache), "--fresh")) == 0
    assert "4 executed, 0 cached" in capsys.readouterr().err


def test_sweep_no_cache_writes_nothing(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(_sweep_args("--cache-dir", str(cache), "--no-cache")) == 0
    assert "4 executed" in capsys.readouterr().err
    assert not cache.exists()


def test_report_resumes_from_cache(tmp_path, capsys, monkeypatch):
    import repro.experiments.full_report as full_report
    from repro.experiments.full_report import ReproductionScale

    tiny = ReproductionScale(
        label="tiny",
        n_values=(8, 12, 16),
        seeds=(0,),
        ablation_n=8,
        ablation_seeds=(0,),
        decomposition_seeds=(0, 1),
        tradeoff={"n": 8, "f": 2, "tau": 2, "k_values": (1,), "seeds": (0,)},
    )
    monkeypatch.setitem(full_report.SCALES, "smoke", tiny)
    cache = tmp_path / "cache"
    args = [
        "report", "--scale", "smoke", "--workers", "1",
        "--out", str(tmp_path / "r.md"), "--cache-dir", str(cache),
    ]
    main(args)
    first = capsys.readouterr().out
    # Cold cache: trials execute (panels sharing curves still dedup).
    assert "0 failed" in first
    assert ": 0 executed" not in first
    main(args)
    second = capsys.readouterr().out
    assert ": 0 executed" in second  # warm cache: nothing simulated


def test_tradeoff_command(capsys):
    assert (
        main(
            [
                "tradeoff",
                "--protocol",
                "round-robin",
                "-n",
                "10",
                "-f",
                "4",
                "--tau",
                "2",
                "--k",
                "1",
                "--seeds",
                "2",
            ]
        )
        == 0
    )
    assert "alpha" in capsys.readouterr().out


def test_ablate_adversaries(capsys):
    assert (
        main(
            [
                "ablate",
                "adversaries",
                "--protocol",
                "flood",
                "-n",
                "10",
                "--seeds",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "oblivious" in out and "ugf" in out


def test_figure_json_then_plot(tmp_path, capsys, monkeypatch):
    import repro.experiments.figure3 as figure3

    monkeypatch.setattr(figure3, "DEFAULT_N_GRID", (8, 12))
    json_path = tmp_path / "fig.json"
    assert (
        main(
            [
                "figure",
                "3a",
                "--seeds",
                "2",
                "--workers",
                "1",
                "--json",
                str(json_path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert json_path.exists()
    assert main(["plot", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "Figure 3a" in out
    assert "max-ugf" in out


def test_figure_plot_inline(capsys, monkeypatch):
    import repro.experiments.figure3 as figure3

    monkeypatch.setattr(figure3, "DEFAULT_N_GRID", (8, 12))
    assert main(["figure", "3c", "--seeds", "2", "--workers", "1", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "log10 y" in out  # message panels plot on a log axis


def test_plot_sweep_json(tmp_path, capsys):
    from repro.experiments.config import SweepSpec
    from repro.experiments.runner import run_sweep
    from repro.experiments.serialization import dumps

    result = run_sweep(
        SweepSpec(protocol="flood", adversary="none", n_values=(6, 10, 14), seeds=(0,)),
        workers=1,
    )
    path = tmp_path / "sweep.json"
    path.write_text(dumps(result))
    assert main(["plot", str(path), "--width", "40", "--height", "8"]) == 0
    out = capsys.readouterr().out
    assert "flood vs none: messages" in out
    assert "flood vs none: time" in out


def test_run_with_environment(capsys):
    assert (
        main(
            [
                "run",
                "--protocol",
                "flood",
                "--adversary",
                "none",
                "-n",
                "10",
                "-f",
                "0",
                "--environment",
                "jitter:3,3",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "delta" in out


def test_inspect_command(capsys):
    assert (
        main(
            [
                "inspect",
                "--protocol",
                "push-pull",
                "--adversary",
                "str-2.1.1",
                "-n",
                "20",
                "-f",
                "6",
                "--rows",
                "8",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "awake" in out
    assert "quiet gap" in out  # the delay attack fast-forwards dead air


def test_decompose_command(capsys):
    assert (
        main(["decompose", "--protocol", "flood", "-n", "12", "--seeds", "6"]) == 0
    )
    out = capsys.readouterr().out
    assert "max-UGF for time" in out
    assert "str-" in out


def test_report_command_tiny(tmp_path, capsys, monkeypatch):
    import repro.experiments.full_report as full_report

    tiny = full_report.ReproductionScale(
        label="tiny",
        n_values=(8, 12, 16),
        seeds=(0,),
        ablation_n=10,
        ablation_seeds=(0,),
        decomposition_seeds=(0, 1, 2),
        tradeoff={"n": 8, "f": 2, "tau": 2, "k_values": (1,), "seeds": (0,)},
    )
    monkeypatch.setitem(full_report.SCALES, "smoke", tiny)
    out_path = tmp_path / "report.md"
    code = main(["report", "--scale", "smoke", "--out", str(out_path), "--workers", "1"])
    out = capsys.readouterr().out
    assert code in (0, 1)  # verdict-dependent on a 2-point grid
    assert out_path.exists()
    assert "# Reproduction report" in out_path.read_text()
    assert "wrote" in out


def test_sweep_with_environment(capsys):
    assert (
        main(
            [
                "sweep",
                "--protocol",
                "flood",
                "--adversary",
                "none",
                "--n",
                "6",
                "--seeds",
                "2",
                "--workers",
                "1",
                "--environment",
                "jitter:2,2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert out.startswith("protocol,")


def test_parser_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--protocol", "bogus", "-n", "5", "-f", "1"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_sweep_accepts_trial_timeout(capsys):
    code = main(
        ["sweep", "--protocol", "flood", "--adversary", "none",
         "--n", "8", "--seeds", "2", "--workers", "1",
         "--no-cache", "--trial-timeout", "60"]
    )
    assert code == 0
    assert "n,f," in capsys.readouterr().out


def test_bench_smoke_grid_writes_report(tmp_path, capsys):
    import json

    code = main(
        ["bench", "--grid", "smoke", "--workers", "1",
         "--out", str(tmp_path), "--baseline", str(tmp_path / "none.json")]
    )
    assert code == 0
    reports = list(tmp_path.glob("BENCH_*.json"))
    assert len(reports) == 1
    report = json.loads(reports[0].read_text())
    assert report["schema"] == 1
    assert set(report["stages"]) == {
        "engine_inline", "engine_metrics", "cold_parallel", "warm_replay",
        "wire_format", "dispatch", "batch_backend",
    }
    assert all(s["rate"] > 0 for s in report["stages"].values())
    assert report["env"]["cpu_count"] >= 1
    out = capsys.readouterr().out
    assert "wrote" in out and "engine_inline" in out
