"""Unit tests for the runtime fault-injection hooks."""

import os

import pytest

from repro.chaos import inject as inject_mod
from repro.chaos.inject import FaultInjector, _trial_token, tear_tail
from repro.chaos.plan import (
    FaultPlan,
    FaultRule,
    InjectedFsyncError,
    InjectedPoisonError,
    InjectedTransientError,
)
from repro.experiments.config import TrialSpec


def trial(seed: int = 0) -> TrialSpec:
    return TrialSpec(protocol="flood", adversary="none", n=8, f=0, seed=seed)


def injector(*rules: FaultRule, seed: int = 1, attempt: int = 0) -> FaultInjector:
    return FaultInjector(FaultPlan(seed=seed, rules=rules, attempt=attempt))


# -- trial identity --------------------------------------------------------------


def test_trial_token_is_positional_state_free():
    # Same spec → same token, regardless of chunking or retry context.
    assert _trial_token(trial(3)) == "flood/none/n8/f0/s3"
    assert _trial_token(trial(3)) == _trial_token(trial(3))
    assert _trial_token(trial(3)) != _trial_token(trial(4))


# -- before_trial ----------------------------------------------------------------


def test_transient_exception_fires_then_clears_on_retry():
    rule = FaultRule(site="trial.exception", rate=1.0, attempts=1)
    with pytest.raises(InjectedTransientError, match="injected transient"):
        injector(rule).before_trial(trial())
    # The retried plan asks the same question at attempt 1: quiet.
    injector(rule, attempt=1).before_trial(trial())


def test_poison_fires_on_every_attempt():
    rule = FaultRule(site="trial.poison", rate=1.0, attempts=None)
    for attempt in (0, 1, 7):
        with pytest.raises(InjectedPoisonError, match="repeats on retry"):
            injector(rule, attempt=attempt).before_trial(trial())


def test_seeds_filter_targets_specific_trials():
    rule = FaultRule(site="trial.poison", rate=1.0, attempts=None, seeds=(2,))
    inj = injector(rule)
    inj.before_trial(trial(0))  # not targeted
    with pytest.raises(InjectedPoisonError):
        inj.before_trial(trial(2))


def test_starve_sleeps_for_the_rule_delay(monkeypatch):
    naps = []
    monkeypatch.setattr(inject_mod.time, "sleep", naps.append)
    rule = FaultRule(site="worker.starve", rate=1.0, attempts=None, delay=0.75)
    inj = FaultInjector(FaultPlan(seed=1, rules=(rule,)))
    inj.before_trial(trial())
    assert naps == [0.75]


def test_worker_kill_is_guarded_in_the_origin_process():
    # The pid guard is what keeps this very test alive: an armed kill
    # rule asked from the plan's own origin process must stay quiet.
    rule = FaultRule(site="worker.kill", rate=1.0, attempts=None)
    plan = FaultPlan(seed=1, rules=(rule,)).with_origin(os.getpid())
    FaultInjector(plan).before_trial(trial())  # survives


def test_unarmed_injector_is_a_no_op():
    inj = FaultInjector(FaultPlan(seed=1))
    inj.before_trial(trial())
    inj.check_fsync(0)
    assert inj.maybe_tear("/nonexistent") == 0


# -- check_fsync -----------------------------------------------------------------


def test_fsync_fault_is_absorbed_by_the_retry_window():
    rule = FaultRule(site="store.fsync", rate=1.0, attempts=2)
    inj = injector(rule)
    # First two durability attempts of the first append fail...
    for retry in (0, 1):
        with pytest.raises(InjectedFsyncError):
            inj.check_fsync(retry)
    # ...the third is let through (and it is an OSError, so the store's
    # real retry loop catches it like genuine EIO).
    inj.check_fsync(2)
    assert issubclass(InjectedFsyncError, OSError)


def test_fsync_draws_advance_per_append():
    rule = FaultRule(site="store.fsync", rate=0.5, attempts=1)
    inj = injector(rule, seed=13)
    verdicts = []
    for _ in range(16):
        try:
            inj.check_fsync(0)
            verdicts.append(False)
        except InjectedFsyncError:
            verdicts.append(True)
    # A rate-0.5 rule over distinct append tokens must vary.
    assert any(verdicts) and not all(verdicts)


# -- tear_tail -------------------------------------------------------------------


def test_tear_tail_truncates_mid_final_record(tmp_path):
    path = tmp_path / "trials.jsonl"
    lines = [b'{"key": "a", "wire": [1]}', b'{"key": "b", "wire": [2]}']
    path.write_bytes(b"\n".join(lines) + b"\n")
    before = path.stat().st_size
    torn = tear_tail(path)
    assert 0 < torn < len(lines[1]) + 1
    assert path.stat().st_size == before - torn
    data = path.read_bytes()
    # The first record survives intact; the tail is a dead fragment.
    assert data.startswith(lines[0] + b"\n")
    assert not data.endswith(b"\n")


def test_tear_tail_edge_cases(tmp_path):
    missing = tmp_path / "missing.jsonl"
    assert tear_tail(missing) == 0
    empty = tmp_path / "empty.jsonl"
    empty.write_bytes(b"")
    assert tear_tail(empty) == 0
    tiny = tmp_path / "tiny.jsonl"
    tiny.write_bytes(b"\n")
    assert tear_tail(tiny) == 0


def test_maybe_tear_fires_at_most_once(tmp_path):
    path = tmp_path / "trials.jsonl"
    path.write_bytes(b'{"key": "a", "wire": [1]}\n{"key": "b", "wire": [2]}\n')
    rule = FaultRule(site="store.tear", rate=1.0, attempts=None)
    inj = injector(rule)
    assert inj.maybe_tear(path) > 0
    # One crash tears one tail; recovery must be able to converge.
    assert inj.maybe_tear(path) == 0
