"""Unit tests for declarative, seeded fault plans."""

import json
import os

import pytest

from repro.chaos.plan import (
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    shipped_plans,
)
from repro.errors import ConfigurationError


def kill_rule(**overrides) -> FaultRule:
    base = dict(site="worker.kill", rate=1.0)
    base.update(overrides)
    return FaultRule(**base)


# -- validation ------------------------------------------------------------------


def test_unknown_site_is_rejected():
    with pytest.raises(ConfigurationError, match="unknown fault site"):
        FaultRule(site="disk.melt")


@pytest.mark.parametrize("rate", [-0.1, 1.5])
def test_rate_outside_unit_interval_is_rejected(rate):
    with pytest.raises(ConfigurationError, match="fault rate"):
        FaultRule(site="trial.exception", rate=rate)


def test_attempts_below_one_is_rejected():
    with pytest.raises(ConfigurationError, match="attempts"):
        FaultRule(site="trial.exception", attempts=0)


def test_negative_delay_is_rejected():
    with pytest.raises(ConfigurationError, match="delay"):
        FaultRule(site="worker.starve", delay=-1.0)


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigurationError, match="unknown fault-rule fields"):
        FaultRule.from_dict({"site": "trial.exception", "rte": 0.5})


# -- determinism -----------------------------------------------------------------


def test_fires_is_a_pure_function_of_its_coordinates():
    plan = FaultPlan(seed=7, rules=(FaultRule(site="trial.exception", rate=0.5),))
    rule = plan.rules[0]
    answers = [plan.fires(rule, f"trial{i}") for i in range(64)]
    # Deterministic: asking again gives the same 64 answers...
    assert answers == [plan.fires(rule, f"trial{i}") for i in range(64)]
    # ...and a rate-0.5 rule both fires and stays quiet somewhere.
    assert any(answers) and not all(answers)


def test_different_seeds_give_different_draws():
    rule = FaultRule(site="trial.exception", rate=0.5)
    a = FaultPlan(seed=1, rules=(rule,))
    b = FaultPlan(seed=2, rules=(rule,))
    tokens = [f"trial{i}" for i in range(64)]
    assert [a.fires(rule, t) for t in tokens] != [b.fires(rule, t) for t in tokens]


def test_attempts_window_clears_on_retry():
    rule = FaultRule(site="trial.exception", rate=1.0, attempts=1)
    plan = FaultPlan(seed=3, rules=(rule,))
    assert plan.fires(rule, "t")
    assert not plan.with_attempt(1).fires(rule, "t")
    # attempts=None is a deterministic fault: it never clears.
    forever = FaultRule(site="trial.poison", rate=1.0, attempts=None)
    plan = FaultPlan(seed=3, rules=(forever,))
    assert plan.with_attempt(17).fires(forever, "t")


def test_worker_only_sites_stay_quiet_in_the_origin_process():
    rule = kill_rule()
    plan = FaultPlan(seed=5, rules=(rule,)).with_origin(os.getpid())
    assert not plan.fires(rule, "t", pid=os.getpid())
    assert plan.fires(rule, "t", pid=os.getpid() + 1)
    # Trial-targeted sites are not guarded: they are safe anywhere.
    transient = FaultRule(site="trial.exception", rate=1.0)
    plan = FaultPlan(seed=5, rules=(transient,)).with_origin(os.getpid())
    assert plan.fires(transient, "t", pid=os.getpid())


# -- serialisation ---------------------------------------------------------------


def test_plan_round_trips_through_dict_and_file(tmp_path):
    plan = FaultPlan(
        seed=11,
        name="mixed",
        rules=(
            kill_rule(seeds=(1, 2)),
            FaultRule(site="store.fsync", rate=0.25, attempts=2),
            FaultRule(site="worker.starve", attempts=None, delay=0.5),
        ),
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan.to_dict()))
    assert FaultPlan.load(path) == plan


def test_load_rejects_garbage_and_wrong_versions(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text("not json")
    with pytest.raises(ConfigurationError, match="cannot read fault plan"):
        FaultPlan.load(path)
    with pytest.raises(ConfigurationError, match="cannot read fault plan"):
        FaultPlan.load(tmp_path / "missing.json")
    with pytest.raises(ConfigurationError, match="'rules' array"):
        FaultPlan.from_dict({"seed": 1})
    with pytest.raises(ConfigurationError, match="version"):
        FaultPlan.from_dict({"v": 99, "rules": []})


def test_shipped_plans_cover_every_fault_site():
    from repro.chaos import SERVICE_FAULT_SITES, shipped_service_plans

    plans = shipped_plans()
    service_plans = shipped_service_plans()
    armed = {rule.site for plan in plans.values() for rule in plan.rules}
    service_armed = {
        rule.site for plan in service_plans.values() for rule in plan.rules
    }
    # The process/store battery and the service battery split the site
    # space exactly: together they arm everything, with no overlap.
    assert service_armed == SERVICE_FAULT_SITES
    assert armed == FAULT_SITES - SERVICE_FAULT_SITES
    for name, plan in {**plans, **service_plans}.items():
        assert plan.name == name
        # Shipped plans must survive the CLI's file round trip.
        assert FaultPlan.from_dict(plan.to_dict()) == plan
