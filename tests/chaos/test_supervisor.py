"""Tests for supervised execution: classify, retry, degrade, quarantine."""

import pytest

from repro.campaign import Campaign
from repro.campaign.keys import trial_key
from repro.chaos.plan import FaultPlan, FaultRule, shipped_plans
from repro.chaos.supervisor import (
    QuarantineLedger,
    RetryPolicy,
    Supervisor,
    exception_name,
    quarantine_path,
    read_quarantine,
)
from repro.errors import ConfigurationError
from repro.experiments.config import TrialSpec


def trial(seed: int = 0) -> TrialSpec:
    return TrialSpec(protocol="flood", adversary="none", n=8, f=0, seed=seed)


ALWAYS_TRANSIENT = FaultPlan(
    seed=3,
    name="always-transient",
    rules=(FaultRule(site="trial.exception", rate=1.0, attempts=None),),
)


# -- classification --------------------------------------------------------------


def test_exception_name_reads_the_bottom_of_a_traceback():
    trace = (
        "Traceback (most recent call last):\n"
        '  File "x.py", line 1, in f\n'
        "    raise ValueError('no')\n"
        "ValueError: no"
    )
    assert exception_name(trace) == "ValueError"
    assert exception_name("TimeoutError") == "TimeoutError"
    assert (
        exception_name("repro.chaos.plan.InjectedPoisonError: boom")
        == "InjectedPoisonError"
    )
    assert exception_name("KeyError: 'x'\n\n  \n") == "KeyError"
    assert exception_name("") == ""
    assert exception_name(None) == ""


def test_policy_classifies_by_exception_name():
    policy = RetryPolicy()
    assert policy.classify("InjectedTransientError: injected") == "transient"
    assert policy.classify("TrialTimeout: trial exceeded 2s") == "transient"
    assert policy.classify("ValueError: bad f") == "poison"
    assert policy.classify(None) == "poison"


def test_policy_validation():
    with pytest.raises(ConfigurationError, match="max_retries"):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ConfigurationError, match="backoff_factor"):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ConfigurationError, match="jitter"):
        RetryPolicy(jitter=2.0)
    with pytest.raises(ConfigurationError, match="backoff bounds"):
        RetryPolicy(base_backoff=-0.1)


def test_backoff_is_exponential_capped_and_deterministic():
    policy = RetryPolicy(
        base_backoff=0.1, backoff_factor=2.0, max_backoff=0.3, jitter=0.25
    )
    first = policy.backoff_seconds(1, "wave1")
    # Deterministic jitter: the same wave waits the same amount.
    assert first == policy.backoff_seconds(1, "wave1")
    assert 0.1 <= first <= 0.1 * 1.25
    # Attempt 3 would be 0.4 uncapped; the cap bounds it.
    assert policy.backoff_seconds(3, "wave3") <= 0.3 * 1.25
    assert RetryPolicy(base_backoff=0.0).backoff_seconds(1, "wave1") == 0.0
    assert policy.backoff_seconds(0, "wave0") == 0.0


# -- quarantine ledger -----------------------------------------------------------


def test_ledger_round_trips_with_full_traceback(tmp_path):
    error = "Traceback (most recent call last):\n...\nValueError: poisoned"
    with QuarantineLedger(quarantine_path(tmp_path)) as ledger:
        ledger.record(
            trial(1),
            error=error,
            classification="poison",
            attempts=2,
            ladder=["chunked-parallel", "inline"],
            plan="poison",
        )
        assert ledger.records_written == 1
    records, skipped = read_quarantine(tmp_path)
    assert skipped == 0
    (record,) = records
    assert record.key == trial_key(trial(1))
    assert record.error == error  # full traceback, no truncation
    assert record.classification == "poison"
    assert record.attempts == 2
    assert record.ladder == ("chunked-parallel", "inline")
    assert record.plan == "poison"


def test_reader_counts_corrupt_ledger_lines(tmp_path):
    path = quarantine_path(tmp_path)
    with QuarantineLedger(path) as ledger:
        ledger.record(
            trial(0), error="E: x", classification="poison", attempts=1, ladder=[]
        )
    with path.open("a", encoding="utf-8") as fh:
        fh.write("not json\n")
    records, skipped = read_quarantine(path)
    assert len(records) == 1 and skipped == 1


# -- supervised execution --------------------------------------------------------


def test_transient_faults_are_retried_to_a_clean_verdict(tmp_path):
    plan = shipped_plans()["transient-exception"]
    naps: list[float] = []
    with Campaign(
        cache_dir=tmp_path, workers=1, metrics=True, fault_plan=plan
    ) as campaign:
        supervisor = Supervisor(campaign, sleep=naps.append)
        run = supervisor.run_trials([trial(s) for s in range(5)])
    assert run.verdict == "clean" and not run.degraded
    assert all(r.ok for r in run.results)
    assert len(run.outcomes()) == 5
    assert run.retries >= 1 and run.quarantined == ()
    # Backoff actually waited, by the policy's deterministic schedule.
    assert naps and naps[0] == supervisor.policy.backoff_seconds(1, "wave1")
    counters = campaign.metrics.counters
    assert counters["supervisor.retries"] == run.retries
    assert counters["supervisor.verdict.clean"] == 1
    # Nothing was quarantined, so no ledger file materialises.
    assert not quarantine_path(tmp_path).exists()


def test_poison_quarantines_with_traceback_and_completes(tmp_path):
    plan = shipped_plans()["poison"]  # targets seed 0 only
    with Campaign(cache_dir=tmp_path, workers=1, fault_plan=plan) as campaign:
        with Supervisor(
            campaign, policy=RetryPolicy(base_backoff=0.0)
        ) as supervisor:
            run = supervisor.run_trials([trial(s) for s in range(3)])
    # Degraded, never aborted: every spec got a result slot.
    assert run.verdict == "degraded" and run.degraded
    assert [r.ok for r in run.results] == [False, True, True]
    (quarantined,) = run.quarantined
    assert quarantined.key == trial_key(trial(0))
    assert quarantined.classification == "poison"
    assert quarantined.plan == "poison"
    assert "Traceback (most recent call last)" in quarantined.error
    assert "InjectedPoisonError" in quarantined.error
    assert "degraded" in run.summary()
    # The on-disk ledger carries the same full traceback.
    records, _ = read_quarantine(tmp_path)
    assert records[0].key == quarantined.key
    assert "InjectedPoisonError" in records[0].error


def test_exhausted_transients_walk_the_full_ladder(tmp_path):
    with Campaign(
        cache_dir=tmp_path, workers=1, metrics=True, fault_plan=ALWAYS_TRANSIENT
    ) as campaign:
        with Supervisor(
            campaign, policy=RetryPolicy(max_retries=2, base_backoff=0.0)
        ) as supervisor:
            run = supervisor.run_trials([trial(0)])
    assert run.verdict == "degraded"
    (quarantined,) = run.quarantined
    assert quarantined.classification == "transient-exhausted"
    assert quarantined.attempts == 2
    assert quarantined.ladder == ("chunked-parallel", "smaller-chunks", "inline")
    counters = campaign.metrics.counters
    assert counters["supervisor.rung.smaller-chunks"] == 1
    assert counters["supervisor.rung.inline"] == 1
    assert counters["supervisor.quarantined"] == 1


def test_ladder_restores_pool_configuration(tmp_path):
    with Campaign(cache_dir=tmp_path, workers=1, fault_plan=ALWAYS_TRANSIENT) as campaign:
        campaign.pool.chunk_size = 8
        saved = (campaign.pool.workers, campaign.pool.chunk_size)
        supervisor = Supervisor(
            campaign, policy=RetryPolicy(max_retries=3, base_backoff=0.0)
        )
        supervisor.run_trials([trial(0)])
        assert (campaign.pool.workers, campaign.pool.chunk_size) == saved
        assert campaign.pool.fault_plan == campaign.fault_plan


def test_zero_retries_quarantines_poison_unretried(tmp_path):
    plan = shipped_plans()["poison"]
    with Campaign(cache_dir=tmp_path, workers=1, fault_plan=plan) as campaign:
        run = Supervisor(
            campaign, policy=RetryPolicy(max_retries=0)
        ).run_trials([trial(0)])
    assert run.verdict == "degraded" and run.retries == 0
    (quarantined,) = run.quarantined
    assert quarantined.classification == "poison"
    assert quarantined.attempts == 0


def test_robustness_events_flow_into_run_stats(tmp_path):
    from repro.obs.stats import load_run_stats, render_run_stats, run_stats_json

    plan = shipped_plans()["poison"]
    with Campaign(
        cache_dir=tmp_path, workers=1, metrics=True, fault_plan=plan
    ) as campaign:
        with Supervisor(
            campaign, policy=RetryPolicy(base_backoff=0.0)
        ) as supervisor:
            supervisor.run_trials([trial(s) for s in range(2)])
    stats = load_run_stats(tmp_path)
    # retry/quarantine/verdict are first-class kinds, not foreign.
    assert stats.foreign_records == 0
    assert len(stats.quarantines) == 1
    assert stats.verdicts[-1]["verdict"] == "degraded"
    text = render_run_stats(stats)
    assert "robustness:" in text and "degraded" in text
    payload = run_stats_json(stats)
    assert payload["robustness"]["quarantined"] == 1
    assert payload["robustness"]["verdicts"] == ["degraded"]
