"""The differential chaos battery — the robustness layer's headline proof.

For every shipped :class:`FaultPlan` that models a *recoverable* fault,
a supervised campaign run under injection must converge to a trial
store **byte-identical at the outcome-wire level** to a fault-free
run: same content addresses mapping to same wire payloads, compared as
canonical JSON (retries may reorder or duplicate appends; last write
wins, exactly as the reader resolves them).

The ``poison`` plan proves the complementary property: a deterministic
failure ends in quarantine — the run *completes, degraded* — and every
trial the fault did not touch is still byte-identical to baseline.
"""

import json
import pathlib

import pytest

from repro.campaign import Campaign
from repro.campaign.keys import trial_key
from repro.chaos.doctor import diagnose
from repro.chaos.plan import shipped_plans
from repro.chaos.supervisor import RetryPolicy, Supervisor, read_quarantine
from repro.experiments.config import TrialSpec

SPECS = [
    TrialSpec(protocol="flood", adversary="none", n=8, f=0, seed=seed)
    for seed in range(5)
]

#: Per-plan knobs: pool-starvation stalls workers for longer than the
#: whole sweep, so the per-trial deadline must cut the stall short for
#: the ladder to reach the inline rung (where the pid guard disarms it).
_TRIAL_TIMEOUT = {"pool-starvation": 0.75}
_MAX_RETRIES = {"pool-starvation": 6}

RECOVERY_PLANS = sorted(set(shipped_plans()) - {"poison"})


def wire_image(run_dir) -> str:
    """The store reduced to canonical JSON of key → wire, last write wins."""
    index = {}
    store = pathlib.Path(run_dir) / "trials.jsonl"
    for line in store.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            index[record["key"]] = record["wire"]
        except (json.JSONDecodeError, KeyError, TypeError):
            continue  # torn/corrupt lines: skipped, like the reader
    return json.dumps(index, sort_keys=True)


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("baseline")
    with Campaign(cache_dir=run_dir, workers=1) as campaign:
        results = campaign.run_trials(SPECS)
    assert all(r.ok for r in results)
    return wire_image(run_dir)


def supervised_run(run_dir, plan, *, max_retries=3):
    with Campaign(
        cache_dir=run_dir,
        workers=2,
        metrics=True,
        trial_timeout=_TRIAL_TIMEOUT.get(plan.name),
        fault_plan=plan,
    ) as campaign:
        campaign.pool.chunk_size = 2
        with Supervisor(
            campaign, policy=RetryPolicy(max_retries=max_retries, base_backoff=0.0)
        ) as supervisor:
            run = supervisor.run_trials(SPECS)
    # After close(): store.tear fires there, so chaos.* counters are
    # only complete once the campaign session has ended.
    return run, dict(campaign.metrics.counters)


#: Per-plan evidence that the fault actually fired — without this, a
#: plan that silently stopped injecting would pass the battery vacuously.
_FAULT_EVIDENCE = {
    "worker-kill": "pool.broken_pool_recoveries",
    "transient-exception": "supervisor.retries",
    "fsync-failure": "store.fsync_retries",
    "torn-tail": "chaos.torn_bytes",
    "pool-starvation": "supervisor.retries",
}


@pytest.mark.parametrize("name", RECOVERY_PLANS)
def test_supervised_recovery_matches_fault_free_run(name, baseline, tmp_path):
    plan = shipped_plans()[name]
    run_dir = tmp_path / name
    run, counters = supervised_run(
        run_dir, plan, max_retries=_MAX_RETRIES.get(name, 3)
    )
    assert counters.get(_FAULT_EVIDENCE[name], 0) > 0, (
        f"plan {name!r} injected nothing — the battery proved nothing"
    )

    if name == "torn-tail":
        # The tear fires at session close: one record is lost on disk
        # even though the run itself was clean. Heal the tail, then a
        # fresh session resumes — re-running only the torn trial.
        assert run.verdict == "clean"
        report = diagnose(run_dir, repair=True)
        assert report.repairs and report.ok
        with Campaign(cache_dir=run_dir, workers=1) as campaign:
            run = Supervisor(campaign).run_trials(SPECS)
        assert sum(not r.cached for r in run.results) == 1

    assert run.verdict == "clean", run.summary()
    assert all(r.ok for r in run.results)
    assert run.quarantined == ()
    assert wire_image(run_dir) == baseline
    # And the recovered run directory passes the doctor.
    assert diagnose(run_dir).ok


def test_poison_plan_quarantines_and_spares_the_rest(baseline, tmp_path):
    run_dir = tmp_path / "poison"
    run, counters = supervised_run(run_dir, shipped_plans()["poison"])
    # Completed and degraded — never aborted.
    assert run.verdict == "degraded"
    assert counters["supervisor.verdict.degraded"] == 1
    poisoned_key = trial_key(SPECS[0])  # the plan targets seed 0
    (quarantined,) = run.quarantined
    assert quarantined.key == poisoned_key
    assert quarantined.classification == "poison"
    records, skipped = read_quarantine(run_dir)
    assert skipped == 0
    assert "Traceback (most recent call last)" in records[0].error
    assert "InjectedPoisonError" in records[0].error

    # Every untouched trial is still byte-identical to baseline.
    faulted = json.loads(wire_image(run_dir))
    expected = json.loads(baseline)
    assert poisoned_key not in faulted
    del expected[poisoned_key]
    assert faulted == expected
    assert diagnose(run_dir).ok
