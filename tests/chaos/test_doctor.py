"""Tests for ``repro-ugf doctor``: diagnosis and repair of run damage."""

import json

from repro.campaign.keys import spec_fingerprint, trial_key
from repro.campaign.store import TrialStore
from repro.chaos.doctor import diagnose
from repro.chaos.inject import tear_tail
from repro.chaos.supervisor import QuarantineLedger, quarantine_path
from repro.cli import main
from repro.experiments.config import TrialSpec
from repro.experiments.runner import run_trial


def trial(seed: int = 0) -> TrialSpec:
    return TrialSpec(protocol="flood", adversary="none", n=8, f=0, seed=seed)


def seeded_store(tmp_path, count: int = 3) -> list[TrialSpec]:
    specs = [trial(s) for s in range(count)]
    with TrialStore(tmp_path) as store:
        store.put_many(
            [(trial_key(s), spec_fingerprint(s), run_trial(s)) for s in specs]
        )
    return specs


def kinds(report, severity=None):
    return {
        f.kind
        for f in report.findings
        if severity is None or f.severity == severity
    }


# -- store scanning --------------------------------------------------------------


def test_clean_store_is_clean(tmp_path):
    seeded_store(tmp_path, count=3)
    report = diagnose(tmp_path)
    assert report.ok
    assert report.records == 3
    assert report.findings == []
    assert "verdict: clean" in report.summary()


def test_missing_store_is_an_error(tmp_path):
    report = diagnose(tmp_path)
    assert not report.ok
    assert kinds(report, "error") == {"no-store"}


def test_torn_tail_is_detected_and_truncated_by_repair(tmp_path):
    seeded_store(tmp_path, count=3)
    path = tmp_path / "trials.jsonl"
    healthy = path.stat().st_size
    torn = tear_tail(path)
    assert torn > 0

    report = diagnose(tmp_path)
    assert not report.ok
    assert kinds(report, "error") == {"torn-tail"}
    assert report.records == 2  # the first two lines are still good

    report = diagnose(tmp_path, repair=True)
    # The report describes the healed store: clean, fragment gone.
    assert report.ok
    assert report.repairs and "truncated torn tail" in report.repairs[0]
    assert report.records == 2
    assert path.stat().st_size < healthy
    assert path.read_bytes().endswith(b"\n")
    # A second opinion agrees the repaired store is clean.
    assert diagnose(tmp_path).ok


def test_unterminated_final_record_is_newline_terminated(tmp_path):
    seeded_store(tmp_path, count=2)
    path = tmp_path / "trials.jsonl"
    data = path.read_bytes()
    path.write_bytes(data[:-1])  # drop only the trailing newline

    report = diagnose(tmp_path)
    assert not report.ok
    assert kinds(report, "error") == {"unterminated-tail"}

    report = diagnose(tmp_path, repair=True)
    assert report.ok
    assert report.repairs == [
        "trials.jsonl: terminated the final record with a newline"
    ]
    assert report.records == 2  # no data lost: the record was complete
    assert path.read_bytes() == data


def test_edited_record_fails_its_content_address(tmp_path):
    seeded_store(tmp_path, count=2)
    path = tmp_path / "trials.jsonl"
    lines = path.read_text().splitlines()
    record = json.loads(lines[0])
    record["spec"]["seed"] = 999  # edit in place; key no longer matches
    lines[0] = json.dumps(record, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")

    report = diagnose(tmp_path)
    assert not report.ok
    assert kinds(report, "error") == {"bad-address"}
    assert report.records == 1


def test_undecodable_wire_payload_is_an_error(tmp_path):
    seeded_store(tmp_path, count=1)
    path = tmp_path / "trials.jsonl"
    record = json.loads(path.read_text())
    record["wire"] = [1, 2]
    path.write_text(json.dumps(record, separators=(",", ":")) + "\n")
    report = diagnose(tmp_path)
    assert not report.ok
    assert kinds(report, "error") == {"bad-wire"}


def test_interior_corruption_is_a_warning_not_an_error(tmp_path):
    seeded_store(tmp_path, count=2)
    path = tmp_path / "trials.jsonl"
    lines = path.read_text().splitlines()
    lines.insert(1, "x" * 20)  # corrupt interior line; reader skips it
    path.write_text("\n".join(lines) + "\n")
    report = diagnose(tmp_path)
    assert report.ok  # data already lost; nothing doctor should break
    assert kinds(report, "warn") == {"corrupt-line"}
    assert report.records == 2


def test_superseded_rewrites_are_informational(tmp_path):
    spec = trial(0)
    with TrialStore(tmp_path) as store:
        outcome = run_trial(spec)
        store.put(trial_key(spec), spec_fingerprint(spec), outcome)
        store.put(trial_key(spec), spec_fingerprint(spec), outcome)
    report = diagnose(tmp_path)
    assert report.ok
    assert kinds(report, "info") == {"duplicate-keys"}


# -- cross-checks ----------------------------------------------------------------


def test_recovered_quarantine_entries_are_flagged(tmp_path):
    (spec, *_rest) = seeded_store(tmp_path, count=1)
    with QuarantineLedger(quarantine_path(tmp_path)) as ledger:
        ledger.record(
            spec,
            error="InjectedTransientError: gone now",
            classification="transient-exhausted",
            attempts=3,
            ladder=["chunked-parallel", "inline"],
        )
    report = diagnose(tmp_path)
    assert report.ok
    assert report.quarantine_records == 1
    assert kinds(report, "info") == {"quarantine-recovered"}


def test_corrupt_side_ledgers_warn(tmp_path):
    seeded_store(tmp_path, count=1)
    quarantine_path(tmp_path).write_text("not json\n")
    (tmp_path / "telemetry.jsonl").write_text("also not json\n")
    report = diagnose(tmp_path)
    assert report.ok
    assert kinds(report, "warn") == {"quarantine-corrupt", "telemetry-corrupt"}


# -- CLI -------------------------------------------------------------------------


def test_doctor_cli_exit_codes_and_repair(tmp_path, capsys):
    seeded_store(tmp_path, count=3)
    path = tmp_path / "trials.jsonl"
    assert main(["doctor", str(tmp_path)]) == 0
    assert "verdict: clean" in capsys.readouterr().out

    tear_tail(path)
    assert main(["doctor", str(tmp_path)]) == 1
    captured = capsys.readouterr()
    assert "torn-tail" in captured.err
    assert "NEEDS ATTENTION" in captured.out

    assert main(["doctor", str(tmp_path), "--repair"]) == 0
    captured = capsys.readouterr()
    assert "repaired: trials.jsonl: truncated torn tail" in captured.out
    assert main(["doctor", str(tmp_path)]) == 0
